#include "serve/session_server.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>
#include <string_view>
#include <variant>

#include "common/checksum.hpp"
#include "common/logging.hpp"
#include "net/tcp_transport.hpp"
#include "net/wire.hpp"
#include "telemetry/stats_server.hpp"
#include "telemetry/trace.hpp"

namespace automdt::serve {

namespace {

constexpr int kEpollTickMs = 50;
/// Receive chunk per epoll readiness: one recv's worth, grown on demand.
constexpr std::size_t kRecvChunkBytes = 256 * 1024;

/// Mirror of stream_pool.cpp's decode_wire_chunk_meta: metadata fields only,
/// payload left in place so it can be copied once into its final home (arena
/// lease or vector).
bool decode_chunk_meta(const std::byte* data, std::size_t size, bool traced,
                       net::WireChunk& out, std::size_t& payload_at) {
  const std::size_t header_bytes = traced ? net::kWireChunkTracedHeaderBytes
                                          : net::kWireChunkHeaderBytes;
  if (size < header_bytes) return false;
  net::wire::Reader r(data, size);
  out.file_id = r.u64();
  out.offset = r.u64();
  out.size = r.u32();
  out.checksum = r.u64();
  if (traced) {
    out.trace_origin_ns = r.u64();
    out.trace_send_ns = r.u64();
  }
  if (size - header_bytes > out.size) return false;
  payload_at = header_bytes;
  return true;
}

}  // namespace

SessionServer::SessionServer(SessionServerConfig config)
    : config_(std::move(config)),
      tenants_(config_.default_quota, metrics_),
      registry_(config_.max_sessions),
      work_ring_(config_.queue_capacity),
      bytes_ok_(*metrics_.counter("serve.bytes_ok")),
      chunks_ok_(*metrics_.counter("serve.chunks_ok")),
      verify_failures_(*metrics_.counter("serve.verify_failures")),
      rejected_total_(*metrics_.counter("serve.sessions_rejected")),
      legacy_sessions_(*metrics_.counter("serve.legacy_sessions")),
      conns_routed_(*metrics_.counter("serve.conns_routed")) {
  config_.event_loops = std::clamp(config_.event_loops, 1, 64);
  loop_clocks_.resize(static_cast<std::size_t>(config_.event_loops));
  pool_clocks_.resize(
      static_cast<std::size_t>(std::max(config_.worker_threads, 1)));
  if (config_.arena_blocks > 0)
    arena_ = std::make_unique<ArenaPool>(config_.arena_block_bytes,
                                         config_.arena_blocks);
  metrics_.register_callback("serve.sessions_active", [this] {
    return static_cast<double>(registry_.live());
  });
  metrics_.register_callback("serve.sessions_admitted", [this] {
    return static_cast<double>(registry_.admitted_total());
  });
  metrics_.register_callback("serve.worker_threads", [this] {
    return static_cast<double>(config_.worker_threads);
  });
  metrics_.register_callback("serve.event_loops", [this] {
    return static_cast<double>(config_.event_loops);
  });
  metrics_.register_callback("serve.queue_depth", [this] {
    return static_cast<double>(work_ring_.size());
  });
  metrics_.register_callback("serve.connections", [this] {
    return static_cast<double>(connections());
  });
  if (arena_) {
    metrics_.register_callback("serve.arena_blocks_free", [this] {
      return static_cast<double>(arena_->blocks_free());
    });
  }
  // Stage-clock aggregates: the loop shards park in epoll_wait and run busy
  // between wakes; the pool workers block upstream on the work ring and run
  // busy while verifying. Exported in nanoseconds so monitor/scrapers can
  // form fractions over any window they like.
  metrics_.register_callback("serve.loop.busy_ns", [this] {
    return static_cast<double>(loop_clocks_.totals().busy_ns);
  });
  metrics_.register_callback("serve.loop.parked_ns", [this] {
    return static_cast<double>(loop_clocks_.totals().parked_ns);
  });
  metrics_.register_callback("serve.pool.busy_ns", [this] {
    return static_cast<double>(pool_clocks_.totals().busy_ns);
  });
  metrics_.register_callback("serve.pool.blocked_up_ns", [this] {
    return static_cast<double>(pool_clocks_.totals().blocked_upstream_ns);
  });
  metrics_.register_callback("serve.pool.parked_ns", [this] {
    return static_cast<double>(pool_clocks_.totals().parked_ns);
  });
}

SessionServer::~SessionServer() { stop(); }

void SessionServer::configure_tenant(const std::string& name,
                                     const TenantQuota& quota) {
  tenants_.configure(name, quota);
}

bool SessionServer::start() {
  if (running_.load(std::memory_order_acquire)) return true;
  listener_ = net::Listener::open(config_.host, config_.port);
  if (!listener_) return false;
  port_ = listener_->port();

  auto teardown = [this] {
    for (auto& shard : shards_) {
      if (shard->epoll_fd >= 0) ::close(shard->epoll_fd);
      if (shard->wake_fd >= 0) ::close(shard->wake_fd);
    }
    shards_.clear();
    listener_->close();
    listener_.reset();
  };
  shards_.reserve(static_cast<std::size_t>(config_.event_loops));
  for (int i = 0; i < config_.event_loops; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = static_cast<std::size_t>(i);
    shard->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    shard->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (shard->epoll_fd < 0 || shard->wake_fd < 0) {
      shards_.push_back(std::move(shard));
      teardown();
      return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = shard->wake_fd;
    ::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, shard->wake_fd, &ev);
    shards_.push_back(std::move(shard));
  }
  // Shard 0 alone owns the listener; routing fans connections out from it.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listener_->fd();
  ::epoll_ctl(shards_[0]->epoll_fd, EPOLL_CTL_ADD, listener_->fd(), &ev);

  running_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->thread = std::thread([this, s] { event_loop(*s); });
  }
  workers_.reserve(static_cast<std::size_t>(config_.worker_threads));
  for (int i = 0; i < config_.worker_threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
  return true;
}

void SessionServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  for (auto& shard : shards_) wake_shard(*shard);
  for (auto& shard : shards_)
    if (shard->thread.joinable()) shard->thread.join();
  work_ring_.close();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Every loop has exited: shard state is now safe to tear down here.
  for (auto& shard : shards_) {
    shard->conns.clear();
    shard->deferred.clear();
    shard->draining.clear();
    shard->inbox.clear();  // routed conns nobody adopted before stop
    if (shard->epoll_fd >= 0) ::close(shard->epoll_fd);
    if (shard->wake_fd >= 0) ::close(shard->wake_fd);
  }
  shards_.clear();
  if (listener_) {
    listener_->close();
    listener_.reset();
  }
}

std::uint64_t SessionServer::total_bytes_ok() const {
  return bytes_ok_.value();
}

std::uint64_t SessionServer::total_chunks_ok() const {
  return chunks_ok_.value();
}

std::optional<std::uint64_t> SessionServer::watchdog_progress() const {
  bool inflight = false;
  for (const auto& s : registry_.list()) {
    if (s->inflight_chunks() > 0) {
      inflight = true;
      break;
    }
  }
  if (!inflight) return std::nullopt;
  // Monotone under any activity a stall would mask: verified chunks and
  // failed verifications both count as the pool making progress.
  return chunks_ok_.value() + verify_failures_.value();
}

std::string SessionServer::stall_report() const {
  struct Stalled {
    std::uint32_t id;
    std::string tenant;
    std::uint64_t inflight;
    double idle_s;
  };
  std::vector<Stalled> stalled;
  const std::uint64_t now = telemetry::now_ns();
  for (const auto& s : registry_.list()) {
    const std::uint64_t inflight = s->inflight_chunks();
    if (inflight == 0) continue;
    const std::uint64_t last = s->last_progress_ns();
    const double idle_s =
        last == 0 || now < last ? 0.0 : static_cast<double>(now - last) / 1e9;
    stalled.push_back({s->id(), s->tenant()->name(), inflight, idle_s});
  }
  if (stalled.empty()) return "";
  std::sort(stalled.begin(), stalled.end(),
            [](const Stalled& a, const Stalled& b) { return a.idle_s > b.idle_s; });
  std::ostringstream os;
  os << "stalled sessions:";
  const std::size_t shown = std::min<std::size_t>(stalled.size(), 4);
  for (std::size_t i = 0; i < shown; ++i) {
    const Stalled& s = stalled[i];
    if (i > 0) os << ",";
    os << " session " << s.id << " (tenant " << s.tenant << ", " << s.inflight
       << " in flight, idle " << s.idle_s << "s)";
  }
  if (stalled.size() > shown) os << ", +" << (stalled.size() - shown) << " more";
  const std::string util = utilization_report();
  if (!util.empty()) os << " | " << util;
  return os.str();
}

std::string SessionServer::utilization_report() const {
  const telemetry::StageClockTotals pool = pool_clocks_.totals();
  const telemetry::StageClockTotals loop = loop_clocks_.totals();
  // Parked time is deliberate idleness (epoll wait, ring wait before the
  // first chunk) and is excluded from the pool's denominator, mirroring the
  // engine-side attribution rule.
  const double pool_active =
      static_cast<double>(pool.busy_ns + pool.blocked_upstream_ns +
                          pool.blocked_downstream_ns);
  const double loop_wall = static_cast<double>(
      loop.busy_ns + loop.blocked_upstream_ns + loop.blocked_downstream_ns +
      loop.parked_ns);
  if (pool_active <= 0.0 && loop_wall <= 0.0) return "";
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  if (pool_active > 0.0) {
    os << "pool busy " << static_cast<double>(pool.busy_ns) / pool_active
       << " starved "
       << static_cast<double>(pool.blocked_upstream_ns) / pool_active;
  } else {
    os << "pool idle";
  }
  if (loop_wall > 0.0) {
    os << ", loops busy " << static_cast<double>(loop.busy_ns) / loop_wall;
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Event loop.

void SessionServer::event_loop(Shard& shard) {
  // Stage clock: an event loop is parked while it sits in epoll_wait (idle
  // by design, not evidence of a bottleneck) and busy from wake to the next
  // wait — decode, admission, deferral retries, drain sweeps all count.
  telemetry::StageClock& clock = loop_clocks_.slot(shard.index);
  clock.start();
  clock.enter(telemetry::WorkerState::kParked);
  epoll_event events[64];
  while (running_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(shard.epoll_fd, events, 64, kEpollTickMs);
    clock.enter(telemetry::WorkerState::kBusy);
    if (!running_.load(std::memory_order_acquire)) break;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == shard.wake_fd) {
        std::uint64_t drain = 0;
        while (::read(shard.wake_fd, &drain, sizeof(drain)) > 0) {
        }
      } else if (shard.index == 0 && listener_ && fd == listener_->fd()) {
        accept_ready(shard);
      } else {
        auto it = shard.conns.find(fd);
        if (it != shard.conns.end()) conn_readable(shard, *it->second);
      }
    }
    adopt_routed(shard);
    retry_deferred(shard);
    sweep_draining(shard);
    clock.enter(telemetry::WorkerState::kParked);
  }
  clock.enter(telemetry::WorkerState::kParked);
  // Connections die with shard.conns in stop(); sessions left draining are
  // abandoned — their in-flight work finishes in the pool and the final
  // counters stay queryable through the registry.
}

void SessionServer::accept_ready(Shard& shard) {
  // The listener fd polled readable, so this accept returns immediately.
  std::optional<net::Socket> accepted = listener_->accept(0.1);
  if (!accepted) return;
  accepted->set_no_delay();
  auto conn = std::make_unique<Conn>();
  conn->socket = std::move(*accepted);
  conn->writer = std::make_unique<net::FrameWriter>(conn->socket);
  const int fd = conn->socket.fd();
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(shard.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) return;
  shard.conns.emplace(fd, std::move(conn));
  connections_.fetch_add(1, std::memory_order_relaxed);
}

void SessionServer::adopt_routed(Shard& shard) {
  std::vector<std::unique_ptr<Conn>> moved;
  {
    std::lock_guard lock(shard.inbox_mutex);
    moved.swap(shard.inbox);
  }
  for (std::unique_ptr<Conn>& conn : moved) {
    const int fd = conn->socket.fd();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(shard.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      connections_.fetch_sub(1, std::memory_order_relaxed);
      continue;  // conn dies here; it owned no sessions yet
    }
    auto [it, inserted] = shard.conns.emplace(fd, std::move(conn));
    // The frame that triggered routing is still buffered: process it now.
    if (inserted) process_rbuf(shard, *it->second);
  }
}

std::size_t SessionServer::route_target(const net::Frame& frame) const {
  // A connection is pinned by the tenant its FIRST frame names: an explicit
  // kSessionOpen routes by that tenant, anything else (legacy flagless
  // traffic, control chatter) lands with the "default" tenant's shard. One
  // tenant's connections therefore always share a loop, which keeps
  // per-tenant frame ordering identical to the single-loop plane.
  std::string_view tenant = "default";
  SessionOpenRequest open;
  if (frame.type == net::FrameType::kSessionOpen &&
      decode_session_open(frame.payload.data(), frame.payload.size(), open) &&
      !open.tenant.empty()) {
    tenant = open.tenant;
  }
  return static_cast<std::size_t>(
             fnv1a(tenant.data(), tenant.size())) %
         shards_.size();
}

void SessionServer::conn_readable(Shard& shard, Conn& conn) {
  if (conn.pending.has_value()) return;  // paused; the kernel buffers for us
  if (conn.rbuf.size() < conn.rend + kRecvChunkBytes)
    conn.rbuf.resize(conn.rend + kRecvChunkBytes);
  std::size_t received = 0;
  const net::SocketStatus status = conn.socket.read_some(
      conn.rbuf.data() + conn.rend, conn.rbuf.size() - conn.rend, 0.001,
      &received);
  if (status == net::SocketStatus::kTimeout) return;  // spurious readiness
  if (status != net::SocketStatus::kOk || received == 0) {
    close_conn(shard, conn.socket.fd());
    return;
  }
  conn.rend += received;
  process_rbuf(shard, conn);
}

void SessionServer::process_rbuf(Shard& shard, Conn& conn) {
  net::Frame frame;
  while (!conn.pending.has_value() && !conn.closing) {
    const net::DecodeResult r =
        net::decode_frame(conn.rbuf.data() + conn.rbegin,
                          conn.rend - conn.rbegin, frame,
                          config_.max_payload_bytes);
    if (r.error == net::FrameError::kNeedMoreData) break;
    if (r.error != net::FrameError::kNone) {
      LOG_WARN("serve: dropping connection on frame error: "
               << net::to_string(r.error));
      conn.closing = true;
      break;
    }
    if (!conn.routed) {
      // First complete frame: pin the connection to its tenant's shard
      // BEFORE consuming the frame, so a cross-shard move replays it intact
      // on the owner. No session exists yet, so nothing else migrates.
      conn.routed = true;
      const std::size_t target =
          shards_.size() > 1 ? route_target(frame) : shard.index;
      if (target != shard.index) {
        const int fd = conn.socket.fd();
        auto it = shard.conns.find(fd);
        ::epoll_ctl(shard.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
        std::unique_ptr<Conn> owned = std::move(it->second);
        shard.conns.erase(it);
        conns_routed_.add();
        Shard& to = *shards_[target];
        {
          std::lock_guard lock(to.inbox_mutex);
          to.inbox.push_back(std::move(owned));
        }
        wake_shard(to);
        return;  // `conn` now belongs to the target shard
      }
    }
    conn.rbegin += r.consumed;
    if (!dispatch_frame(shard, conn, frame)) conn.closing = true;
  }
  if (conn.closing) {
    close_conn(shard, conn.socket.fd());
    return;
  }
  // Compact the consumed prefix so the buffer never grows without bound.
  if (conn.rbegin > 0) {
    if (conn.rbegin == conn.rend) {
      conn.rbegin = conn.rend = 0;
    } else {
      std::memmove(conn.rbuf.data(), conn.rbuf.data() + conn.rbegin,
                   conn.rend - conn.rbegin);
      conn.rend -= conn.rbegin;
      conn.rbegin = 0;
    }
  }
}

bool SessionServer::dispatch_frame(Shard& shard, Conn& conn,
                                   net::Frame& frame) {
  switch (frame.type) {
    case net::FrameType::kChunk:
      return handle_chunk(shard, conn, frame);
    case net::FrameType::kSessionOpen:
      handle_open(conn, frame);
      return true;
    case net::FrameType::kSessionClose:
      handle_close(shard, conn, frame.session_id);
      return true;
    case net::FrameType::kRpc:
      handle_rpc(conn, frame);
      return true;
    case net::FrameType::kPing:
      conn.writer->write(net::FrameType::kPong, frame.payload,
                         config_.io_timeout_s);
      return true;
    // Legacy stream-control chatter from an unmodified StreamPool peer: the
    // serve plane has no per-stream parking, so these are harmless no-ops.
    case net::FrameType::kStreamHello:
    case net::FrameType::kStreamPark:
    case net::FrameType::kStreamResume:
      return true;
    default:
      return true;  // forward compatibility: ignore unknown control frames
  }
}

void SessionServer::handle_open(Conn& conn, const net::Frame& frame) {
  SessionOpenRequest open;
  if (!decode_session_open(frame.payload.data(), frame.payload.size(), open)) {
    SessionReject reject;
    reject.reason = RejectReason::kBadRequest;
    reject.message = "malformed kSessionOpen payload";
    rejected_total_.add();
    conn.writer->write(net::FrameType::kSessionReject,
                       encode_session_reject(reject), config_.io_timeout_s);
    return;
  }
  TenantState* tenant = tenants_.get_or_create(open.tenant);
  // ROADMAP (d): validate the advertised chunk size against the tenant's
  // quotas at open time. A chunk bigger than the rate bucket's burst (one
  // second of rate) or the buffer quota can never pass admission — without
  // this check the session opens fine and then wedges forever on its first
  // chunk, indistinguishable from ordinary backpressure to the peer.
  if (open.chunk_bytes > 0) {
    const TenantQuota& quota = tenant->quota();
    const bool over_burst =
        quota.rate_bytes_per_s > 0.0 &&
        static_cast<double>(open.chunk_bytes) > quota.rate_bytes_per_s;
    const bool over_buffer = quota.max_buffer_bytes > 0 &&
                             open.chunk_bytes > quota.max_buffer_bytes;
    if (over_burst || over_buffer) {
      tenant->rejects.add();
      rejected_total_.add();
      SessionReject reject;
      reject.client_token = open.client_token;
      reject.reason = RejectReason::kQuotaTooSmall;
      reject.message = to_string(RejectReason::kQuotaTooSmall);
      conn.writer->write(net::FrameType::kSessionReject,
                         encode_session_reject(reject), config_.io_timeout_s);
      return;
    }
  }
  SessionRegistry::AdmitResult admitted =
      registry_.admit(open, tenant, metrics_);
  if (!admitted.session) {
    tenant->rejects.add();
    rejected_total_.add();
    SessionReject reject;
    reject.client_token = open.client_token;
    reject.reason = admitted.reason;
    reject.message = to_string(admitted.reason);
    conn.writer->write(net::FrameType::kSessionReject,
                       encode_session_reject(reject), config_.io_timeout_s);
    return;
  }
  register_session_callbacks(admitted.session);
  conn.sessions.emplace(admitted.session->id(), admitted.session);
  SessionAccept accept;
  accept.client_token = open.client_token;
  accept.session_id = admitted.session->id();
  conn.writer->write(net::FrameType::kSessionAccept,
                     encode_session_accept(accept), config_.io_timeout_s);
}

bool SessionServer::handle_chunk(Shard& shard, Conn& conn,
                                 const net::Frame& frame) {
  std::shared_ptr<ServeSession> session;
  if (frame.session_id != 0) {
    auto it = conn.sessions.find(frame.session_id);
    if (it == conn.sessions.end()) {
      // Unknown id on this connection: either a peer bug or a frame for an
      // already-finalized session. Drop the chunk, keep the connection.
      metrics_.counter("serve.unknown_session_frames")->add();
      return true;
    }
    session = it->second;
  } else {
    // Legacy flagless traffic: bind an implicit session on first contact so
    // an unmodified engine/StreamPool sender flows through the same
    // admission, accounting, and telemetry as session-aware peers.
    if (!conn.legacy) {
      SessionOpenRequest open;
      open.client_token =
          next_legacy_token_.fetch_add(1, std::memory_order_relaxed);
      SessionRegistry::AdmitResult admitted = registry_.admit(
          open, tenants_.get_or_create("default"), metrics_);
      if (!admitted.session) {
        LOG_WARN("serve: rejecting legacy connection: "
                 << to_string(admitted.reason));
        return false;  // a legacy peer cannot parse kSessionReject
      }
      register_session_callbacks(admitted.session);
      conn.legacy = admitted.session;
      conn.sessions.emplace(admitted.session->id(), admitted.session);
      legacy_sessions_.add();
    }
    session = conn.legacy;
  }
  if (session->state() >= SessionLifecycle::kDraining) {
    metrics_.counter("serve.late_chunks")->add();
    return true;  // data after close: drop
  }

  Conn::Pending pending;
  pending.session = std::move(session);
  pending.unchecked = (frame.flags & net::kFrameFlagUnchecked) != 0;
  std::size_t payload_at = 0;
  if (!decode_chunk_meta(frame.payload.data(), frame.payload.size(),
                         (frame.flags & net::kFrameFlagTraced) != 0,
                         pending.chunk, payload_at)) {
    LOG_WARN("serve: malformed chunk payload; dropping connection");
    return false;
  }
  pending.chunk.session_id = frame.session_id;
  const std::size_t payload_bytes = frame.payload.size() - payload_at;
  // One copy out of the frame buffer into the chunk's final home: an arena
  // block when configured (so tenant quotas bound real arena usage), a heap
  // vector otherwise.
  if (arena_ && payload_bytes <= arena_->block_bytes()) {
    BufferLease lease = arena_->acquire();
    std::memcpy(lease.data(), frame.payload.data() + payload_at,
                payload_bytes);
    lease.truncate(payload_bytes);
    pending.chunk.lease = std::move(lease);
  } else {
    pending.chunk.payload.assign(frame.payload.begin() + payload_at,
                                 frame.payload.end());
  }

  if (!admit_chunk(shard, conn, std::move(pending))) pause_conn(shard, conn);
  return true;
}

bool SessionServer::admit_chunk(Shard& shard, Conn& conn,
                                Conn::Pending&& pending) {
  TenantState* tenant = pending.session->tenant();
  const std::uint64_t bytes = pending.chunk.payload_size();
  if (!pending.rate_ok) {
    if (!tenant->bucket().try_acquire(static_cast<double>(bytes))) {
      tenant->throttle_defers.add();
      conn.pending = std::move(pending);
      return false;
    }
    pending.rate_ok = true;
  }
  if (!pending.quota_ok) {
    if (!tenant->try_reserve_buffer(bytes)) {
      tenant->throttle_defers.add();
      conn.pending = std::move(pending);
      return false;
    }
    pending.quota_ok = true;
  }
  // Every shard produces into the one shared ring, so claim a slot with
  // try_push and only then publish the in-flight accounting a worker will
  // unwind. The session shared_ptr is copied (not moved) into the item so a
  // failed push can re-park `pending` without reconstructing it.
  pending.session->mark_active();
  pending.session->add_inflight(bytes);
  pending.session->stamp_progress(telemetry::now_ns());
  WorkItem item;
  item.session = pending.session;
  item.chunk = std::move(pending.chunk);
  item.unchecked = pending.unchecked;
  item.shard = shard.index;
  if (!work_ring_.try_push_inplace(item)) {
    pending.session->release_inflight(bytes);
    pending.chunk = std::move(item.chunk);
    conn.pending = std::move(pending);
    return false;
  }
  tenant->bytes_admitted.add(bytes);
  return true;
}

void SessionServer::handle_close(Shard& shard, Conn& conn,
                                 std::uint32_t session_id) {
  auto it = conn.sessions.find(session_id);
  if (it == conn.sessions.end()) return;
  std::shared_ptr<ServeSession> session = it->second;
  if (session->state() >= SessionLifecycle::kDraining) return;
  session->set_state(SessionLifecycle::kDraining);
  shard.draining.emplace_back(conn.socket.fd(), std::move(session));
  sweep_draining(shard);  // nothing in flight => finalize + reply immediately
}

void SessionServer::handle_rpc(Conn& conn, const net::Frame& frame) {
  const std::uint64_t t1 = telemetry::now_ns();
  std::optional<transfer::RpcMessage> message =
      net::decode_rpc_message(frame.payload.data(), frame.payload.size());
  if (!message) return;
  transfer::RpcMessage reply;
  if (const auto* stats =
          std::get_if<transfer::StatsSnapshotRequest>(&*message)) {
    reply = telemetry::snapshot_to_message(metrics_.snapshot(),
                                           stats->request_id);
  } else if (const auto* sync =
                 std::get_if<transfer::ClockSyncRequest>(&*message)) {
    transfer::ClockSyncResponse response;
    response.request_id = sync->request_id;
    response.t0_ns = sync->t0_ns;
    response.t1_ns = t1;
    response.t2_ns = telemetry::now_ns();
    reply = response;
  } else {
    return;  // not a serve-plane request; ignore
  }
  std::vector<std::byte> payload;
  net::encode_rpc_message(reply, payload);
  conn.writer->write(net::FrameType::kRpc, payload, config_.io_timeout_s);
}

void SessionServer::retry_deferred(Shard& shard) {
  if (shard.deferred.empty()) return;
  // Swap the list out first: a retried connection that re-parks during
  // process_rbuf appends to shard.deferred again via pause_conn, which must
  // not invalidate this iteration.
  std::vector<int> work;
  work.swap(shard.deferred);
  for (int fd : work) {
    auto it = shard.conns.find(fd);
    if (it == shard.conns.end()) continue;
    Conn* conn = it->second.get();
    if (!conn->pending.has_value()) continue;
    Conn::Pending pending = std::move(*conn->pending);
    conn->pending.reset();
    if (admit_chunk(shard, *conn, std::move(pending))) {
      resume_conn(shard, *conn, fd);
      process_rbuf(shard, *conn);  // decode what buffered behind the park
    } else {
      shard.deferred.push_back(fd);  // still parked; the fd stays masked
    }
  }
}

void SessionServer::sweep_draining(Shard& shard) {
  if (shard.draining.empty()) return;
  std::vector<std::pair<int, std::shared_ptr<ServeSession>>> still;
  still.reserve(shard.draining.size());
  for (auto& [fd, session] : shard.draining) {
    if (session->inflight_chunks() > 0) {
      still.emplace_back(fd, std::move(session));
      continue;
    }
    auto it = shard.conns.find(fd);
    finalize_session(it != shard.conns.end() ? it->second.get() : nullptr,
                     session);
  }
  shard.draining = std::move(still);
}

void SessionServer::finalize_session(Conn* conn,
                                     const std::shared_ptr<ServeSession>& s) {
  if (!s->claim_finalize()) return;
  s->set_state(SessionLifecycle::kClosed);
  if (conn != nullptr && !s->abandoned()) {
    conn->writer->write(net::FrameType::kSessionClosed,
                        encode_session_final(s->final_stats()),
                        config_.io_timeout_s, 0, s->id());
    conn->sessions.erase(s->id());
    if (conn->legacy && conn->legacy->id() == s->id()) conn->legacy.reset();
  }
  registry_.remove(s->id());
}

void SessionServer::close_conn(Shard& shard, int fd) {
  auto it = shard.conns.find(fd);
  if (it == shard.conns.end()) return;
  Conn& conn = *it->second;
  // Undo gates a parked chunk already charged (the rate tokens are sunk cost
  // — the bucket has no refund — but buffer reservations must not leak).
  if (conn.pending.has_value()) {
    if (conn.pending->quota_ok)
      conn.pending->session->tenant()->release_buffer(
          conn.pending->chunk.payload_size());
    conn.pending.reset();
  }
  for (auto& [id, session] : conn.sessions) {
    session->set_abandoned();
    if (session->state() < SessionLifecycle::kDraining) {
      session->set_state(SessionLifecycle::kDraining);
      shard.draining.emplace_back(-1, session);
    } else {
      // Already draining via handle_close: repoint its reply fd at nothing.
      for (auto& [dfd, dsession] : shard.draining) {
        if (dsession->id() == id) dfd = -1;
      }
    }
  }
  ::epoll_ctl(shard.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  shard.conns.erase(it);
  connections_.fetch_sub(1, std::memory_order_relaxed);
  sweep_draining(shard);
}

void SessionServer::pause_conn(Shard& shard, Conn& conn) {
  const int fd = conn.socket.fd();
  epoll_event ev{};
  ev.events = 0;
  ev.data.fd = fd;
  ::epoll_ctl(shard.epoll_fd, EPOLL_CTL_MOD, fd, &ev);
  shard.deferred.push_back(fd);
}

void SessionServer::resume_conn(Shard& shard, Conn& conn, int fd) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  ::epoll_ctl(shard.epoll_fd, EPOLL_CTL_MOD, fd, &ev);
  (void)conn;
}

void SessionServer::wake_shard(Shard& shard) {
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(shard.wake_fd, &one, sizeof(one));
}

void SessionServer::register_session_callbacks(
    const std::shared_ptr<ServeSession>& s) {
  // Capturing the shared_ptr keeps closed sessions queryable over
  // kStatsSnapshot after they leave the registry (monitor drill-down into a
  // finished transfer's totals).
  const std::string prefix = "session." + std::to_string(s->id());
  metrics_.register_callback(prefix + ".state", [s] {
    return static_cast<double>(static_cast<std::uint32_t>(s->state()));
  });
  metrics_.register_callback(prefix + ".inflight_chunks", [s] {
    return static_cast<double>(s->inflight_chunks());
  });
}

// ---------------------------------------------------------------------------
// Worker pool.

void SessionServer::worker_loop(int index) {
  // Stage clock: a pool worker is blocked-upstream while the work ring is
  // empty (the event loops are not feeding it) and busy while verifying and
  // accounting a chunk. The try_pop fast path keeps a saturated pool free of
  // clock reads on pops that never wait.
  telemetry::StageClock& clock =
      pool_clocks_.slot(static_cast<std::size_t>(index));
  clock.start();
  WorkItem item;
  for (;;) {
    if (!work_ring_.try_pop(item)) {
      clock.enter(telemetry::WorkerState::kBlockedUpstream);
      const bool alive = work_ring_.pop(item);
      clock.enter(telemetry::WorkerState::kBusy);
      if (!alive) break;
    }
    const std::uint64_t work_t0 = telemetry::now_ns();
    ServeSession& session = *item.session;
    if (config_.inject_worker_stall_s > 0.0 &&
        (config_.stall_session_id == 0 ||
         config_.stall_session_id == session.id())) {
      // Simulated wedge, interruptible so teardown never waits out the full
      // stall; the watchdog sees per-session progress stop meanwhile.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(config_.inject_worker_stall_s));
      while (std::chrono::steady_clock::now() < deadline &&
             running_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    const std::size_t bytes = item.chunk.payload_size();
    const bool ok =
        item.unchecked ||
        fnv1a(item.chunk.payload_data(), bytes) == item.chunk.checksum;
    if (ok) {
      session.bytes_ok.add(bytes);
      session.chunks_ok.add();
      bytes_ok_.add(bytes);
      chunks_ok_.add();
    } else {
      session.verify_failures.add();
      verify_failures_.add();
    }
    session.tenant()->release_buffer(bytes);
    item.chunk.lease.reset();
    item.chunk.payload.clear();
    const std::uint64_t remaining = session.release_inflight(bytes);
    const std::uint64_t work_t1 = telemetry::now_ns();
    // Slice the worker's busy time onto the session and tenant that caused
    // it — the per-session/per-tenant aggregation of the pool stage clocks.
    if (work_t1 > work_t0) {
      session.busy_ns.add(work_t1 - work_t0);
      session.tenant()->busy_ns.add(work_t1 - work_t0);
    }
    session.stamp_progress(work_t1);
    if (remaining == 0 &&
        session.state() == SessionLifecycle::kDraining) {
      // Nudge the owning event loop so its drain sweep runs now, not at the
      // next tick (the sweep itself is the correctness path; this is
      // latency).
      if (item.shard < shards_.size()) wake_shard(*shards_[item.shard]);
    }
  }
  clock.enter(telemetry::WorkerState::kParked);
}

}  // namespace automdt::serve
