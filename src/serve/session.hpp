// Serve-plane session model: many concurrent transfer sessions in one
// process, multiplexed over shared connections and addressed by the frame
// header's session id (net/frame.hpp, kFrameFlagSession).
//
// Three pieces (DESIGN.md §13):
//
//   ServeSession    — per-session state: lifecycle (admitted → active →
//                     draining → closed), byte/chunk counters backed by the
//                     server's MetricsRegistry (so kStatsSnapshot exports a
//                     session dimension for free), and the in-flight
//                     accounting the drain path rides on.
//   TenantTable     — fair-share admission state per tenant: a session-count
//                     cap, an in-flight buffer-byte quota against the shared
//                     receive arena, and a TokenBucket rate share. Quota
//                     exhaustion defers (backpressure), never drops.
//   SessionRegistry — id → session map. Lock-free-friendly by construction:
//                     the mutex guards only cold admit/remove; the event
//                     loop resolves per-frame ids through its own
//                     single-threaded mirror and workers hold shared_ptrs,
//                     so no per-chunk path takes the registry lock.
//
// The open/accept/reject control payloads (FrameType::kSession*) are encoded
// here too, next to the state they create.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "transfer/token_bucket.hpp"

namespace automdt::serve {

// ---------------------------------------------------------------------------
// Session control payloads (FrameType::kSessionOpen/Accept/Reject/Closed).
// Little-endian, length-checked decodes; kSessionClose carries no payload
// (the header's session id says everything).

struct SessionOpenRequest {
  std::uint64_t client_token = 0;  // echoed in accept/reject for correlation
  std::uint64_t expected_bytes = 0;  // 0 = unknown up front
  std::uint32_t chunk_bytes = 0;     // advisory; server only accounts bytes
  std::string tenant;                // "" binds to the default tenant
};

struct SessionAccept {
  std::uint64_t client_token = 0;
  std::uint32_t session_id = 0;
};

enum class RejectReason : std::uint32_t {
  kNone = 0,
  kAtCapacity = 1,      // registry full (--max-sessions)
  kTenantSessions = 2,  // tenant's session-count quota exhausted
  kBadRequest = 3,      // malformed open payload
  /// The advertised chunk_bytes can never pass the tenant's admission gates
  /// (larger than the rate bucket's burst or the buffer quota): rejected at
  /// open instead of wedging the session on its first chunk forever.
  kQuotaTooSmall = 4,
};

const char* to_string(RejectReason reason);

struct SessionReject {
  std::uint64_t client_token = 0;
  RejectReason reason = RejectReason::kNone;
  std::string message;
};

/// Final per-session stats, sent as the kSessionClosed payload once the
/// session has fully drained.
struct SessionFinalStats {
  std::uint64_t bytes_ok = 0;
  std::uint64_t chunks_ok = 0;
  std::uint64_t verify_failures = 0;
};

std::vector<std::byte> encode_session_open(const SessionOpenRequest& msg);
bool decode_session_open(const std::byte* data, std::size_t size,
                         SessionOpenRequest& out);
std::vector<std::byte> encode_session_accept(const SessionAccept& msg);
bool decode_session_accept(const std::byte* data, std::size_t size,
                           SessionAccept& out);
std::vector<std::byte> encode_session_reject(const SessionReject& msg);
bool decode_session_reject(const std::byte* data, std::size_t size,
                           SessionReject& out);
std::vector<std::byte> encode_session_final(const SessionFinalStats& msg);
bool decode_session_final(const std::byte* data, std::size_t size,
                          SessionFinalStats& out);

// ---------------------------------------------------------------------------
// Tenants.

struct TenantQuota {
  /// Concurrent sessions this tenant may hold open. 0 = unlimited.
  int max_sessions = 0;
  /// In-flight (admitted, not yet processed) payload bytes. 0 = unlimited.
  std::uint64_t max_buffer_bytes = 0;
  /// Fair-share admission rate in bytes/s (TokenBucket). <= 0 = unlimited.
  double rate_bytes_per_s = 0.0;
};

/// Per-tenant admission state. Buffer accounting is a relaxed atomic so the
/// event loop and workers never share a lock; the one-chunk overshoot a race
/// could admit is within quota tolerance (quotas bound memory, they are not
/// exact budgets — same contract as TokenBucket rates).
class TenantState {
 public:
  TenantState(std::string name, const TenantQuota& quota,
              telemetry::MetricsRegistry& registry);

  const std::string& name() const { return name_; }
  const TenantQuota& quota() const { return quota_; }
  transfer::TokenBucket& bucket() { return bucket_; }

  /// True if `bytes` fit under the buffer quota; reserves them on success.
  bool try_reserve_buffer(std::uint64_t bytes);
  void release_buffer(std::uint64_t bytes);
  std::uint64_t buffer_bytes() const {
    return buffer_bytes_.load(std::memory_order_relaxed);
  }

  /// True if another session fits under max_sessions; counts it on success.
  bool try_add_session();
  void remove_session();
  int sessions() const { return sessions_.load(std::memory_order_relaxed); }

  // Registry-backed observability (tenant.<name>.*).
  telemetry::Counter& bytes_admitted;     // payload bytes through admission
  telemetry::Counter& rejects;            // session opens refused
  telemetry::Counter& throttle_defers;    // chunk admissions deferred
  telemetry::Counter& busy_ns;            // pool worker-time spent on this
                                          // tenant's chunks (stage clocks)

 private:
  std::string name_;
  TenantQuota quota_;
  transfer::TokenBucket bucket_;
  std::atomic<std::uint64_t> buffer_bytes_{0};
  std::atomic<int> sessions_{0};
};

/// Name → TenantState map with a default quota for unknown tenants. Mutex
/// only on (cold) first-contact creation and list(); get_or_create returns
/// stable pointers for the table's lifetime.
class TenantTable {
 public:
  TenantTable(TenantQuota default_quota, telemetry::MetricsRegistry& registry)
      : default_quota_(default_quota), registry_(registry) {}

  /// Pre-declare a tenant with an explicit quota (CLI --tenant-quota).
  TenantState* configure(const std::string& name, const TenantQuota& quota);
  TenantState* get_or_create(const std::string& name);
  TenantState* find(const std::string& name);
  std::vector<TenantState*> list() const;

 private:
  TenantQuota default_quota_;
  telemetry::MetricsRegistry& registry_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<TenantState>> tenants_;
};

// ---------------------------------------------------------------------------
// Sessions.

enum class SessionLifecycle : std::uint32_t {
  kAdmitted = 0,  // accepted, no data yet
  kActive = 1,    // chunks flowing
  kDraining = 2,  // close requested (or connection lost); in-flight chunks
                  // still working through the pool
  kClosed = 3,    // fully drained and finalized
};

const char* to_string(SessionLifecycle state);

class ServeSession {
 public:
  ServeSession(std::uint32_t id, TenantState* tenant,
               const SessionOpenRequest& open,
               telemetry::MetricsRegistry& registry);

  std::uint32_t id() const { return id_; }
  TenantState* tenant() const { return tenant_; }
  std::uint64_t expected_bytes() const { return expected_bytes_; }

  SessionLifecycle state() const {
    return state_.load(std::memory_order_acquire);
  }
  void set_state(SessionLifecycle s) {
    state_.store(s, std::memory_order_release);
  }
  /// admitted → active on the first chunk (relaxed CAS; any thread).
  void mark_active();

  /// True when the connection died before kSessionClose — the drain then
  /// skips the kSessionClosed reply (nobody is listening).
  bool abandoned() const { return abandoned_.load(std::memory_order_relaxed); }
  void set_abandoned() { abandoned_.store(true, std::memory_order_relaxed); }

  /// Exactly-once finalize claim: both the event loop (close with nothing in
  /// flight) and a worker (last in-flight chunk of a draining session) can
  /// observe "drained"; whoever wins the exchange runs the finalize.
  bool claim_finalize() { return !finalized_.exchange(true); }

  // In-flight accounting: admitted by the event loop before the work-queue
  // push, released by the worker after processing (or by the push-failure
  // unwind). Drain-complete == draining && inflight_chunks == 0.
  void add_inflight(std::uint64_t bytes) {
    inflight_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    inflight_chunks_.fetch_add(1, std::memory_order_acq_rel);
  }
  /// Returns the number of chunks still in flight after this release.
  std::uint64_t release_inflight(std::uint64_t bytes) {
    inflight_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    return inflight_chunks_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  }
  std::uint64_t inflight_chunks() const {
    return inflight_chunks_.load(std::memory_order_acquire);
  }
  std::uint64_t inflight_bytes() const {
    return inflight_bytes_.load(std::memory_order_relaxed);
  }

  /// Stall attribution (watchdog context): stamped on every admitted chunk
  /// and on every worker completion.
  void stamp_progress(std::uint64_t now_ns) {
    last_progress_ns_.store(now_ns, std::memory_order_relaxed);
  }
  std::uint64_t last_progress_ns() const {
    return last_progress_ns_.load(std::memory_order_relaxed);
  }

  SessionFinalStats final_stats() const;

  // Registry-backed counters (session.<id>.*), written by workers.
  telemetry::Counter& bytes_ok;
  telemetry::Counter& chunks_ok;
  telemetry::Counter& verify_failures;
  /// Pool worker-time spent processing this session's chunks — the per-
  /// session slice of the worker stage clocks' busy time.
  telemetry::Counter& busy_ns;

 private:
  std::uint32_t id_;
  TenantState* tenant_;
  std::uint64_t expected_bytes_;
  std::atomic<SessionLifecycle> state_{SessionLifecycle::kAdmitted};
  std::atomic<bool> abandoned_{false};
  std::atomic<bool> finalized_{false};
  std::atomic<std::uint64_t> inflight_chunks_{0};
  std::atomic<std::uint64_t> inflight_bytes_{0};
  std::atomic<std::uint64_t> last_progress_ns_{0};
};

/// Live-session map. The mutex covers admit/remove/list only — per-frame
/// lookups go through the event loop's single-threaded connection mirror and
/// never touch it (see SessionServer). get() exists for cold paths (tests,
/// monitor drill-down).
class SessionRegistry {
 public:
  explicit SessionRegistry(std::size_t max_sessions)
      : max_sessions_(max_sessions) {}

  /// Admit a new session, or explain why not. On success the session is
  /// registered, counted against its tenant, and its session.<id>.* metrics
  /// exist in `registry`.
  struct AdmitResult {
    std::shared_ptr<ServeSession> session;  // null on rejection
    RejectReason reason = RejectReason::kNone;
  };
  AdmitResult admit(const SessionOpenRequest& open, TenantState* tenant,
                    telemetry::MetricsRegistry& registry);

  std::shared_ptr<ServeSession> get(std::uint32_t id) const;
  /// Drop the (closed) session from the live map. The shared_ptr keeps any
  /// in-flight work items and metric callbacks valid.
  void remove(std::uint32_t id);

  std::size_t live() const {
    return live_count_.load(std::memory_order_relaxed);
  }
  std::size_t max_sessions() const { return max_sessions_; }
  std::uint64_t admitted_total() const {
    return admitted_total_.load(std::memory_order_relaxed);
  }
  std::vector<std::shared_ptr<ServeSession>> list() const;

 private:
  std::size_t max_sessions_;
  mutable std::mutex mutex_;
  std::map<std::uint32_t, std::shared_ptr<ServeSession>> live_;
  /// Mirrors live_.size(); lock-free so the serve.sessions_active metrics
  /// callback never takes mutex_ (snapshot() holds the registry-of-metrics
  /// lock while running callbacks, and admit() builds session counters under
  /// mutex_ — live() locking too would order those two mutexes both ways).
  std::atomic<std::size_t> live_count_{0};
  std::uint32_t next_id_ = 1;
  std::atomic<std::uint64_t> admitted_total_{0};
};

}  // namespace automdt::serve
