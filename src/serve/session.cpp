#include "serve/session.hpp"

#include <utility>

#include "net/wire.hpp"

namespace automdt::serve {

namespace wire = net::wire;

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kAtCapacity: return "at-capacity";
    case RejectReason::kTenantSessions: return "tenant-session-quota";
    case RejectReason::kBadRequest: return "bad-request";
    case RejectReason::kQuotaTooSmall: return "quota-too-small";
  }
  return "unknown";
}

const char* to_string(SessionLifecycle state) {
  switch (state) {
    case SessionLifecycle::kAdmitted: return "admitted";
    case SessionLifecycle::kActive: return "active";
    case SessionLifecycle::kDraining: return "draining";
    case SessionLifecycle::kClosed: return "closed";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Payload codecs.

std::vector<std::byte> encode_session_open(const SessionOpenRequest& msg) {
  std::vector<std::byte> out;
  out.reserve(24 + msg.tenant.size());
  wire::put_u64(out, msg.client_token);
  wire::put_u64(out, msg.expected_bytes);
  wire::put_u32(out, msg.chunk_bytes);
  wire::put_u32(out, static_cast<std::uint32_t>(msg.tenant.size()));
  for (char c : msg.tenant) out.push_back(static_cast<std::byte>(c));
  return out;
}

bool decode_session_open(const std::byte* data, std::size_t size,
                         SessionOpenRequest& out) {
  if (size < 24) return false;
  wire::Reader r(data, size);
  out.client_token = r.u64();
  out.expected_bytes = r.u64();
  out.chunk_bytes = r.u32();
  const std::uint32_t tenant_len = r.u32();
  if (tenant_len > r.remaining()) return false;
  out.tenant.assign(reinterpret_cast<const char*>(r.cursor()), tenant_len);
  return true;
}

std::vector<std::byte> encode_session_accept(const SessionAccept& msg) {
  std::vector<std::byte> out;
  out.reserve(12);
  wire::put_u64(out, msg.client_token);
  wire::put_u32(out, msg.session_id);
  return out;
}

bool decode_session_accept(const std::byte* data, std::size_t size,
                           SessionAccept& out) {
  if (size < 12) return false;
  wire::Reader r(data, size);
  out.client_token = r.u64();
  out.session_id = r.u32();
  return true;
}

std::vector<std::byte> encode_session_reject(const SessionReject& msg) {
  std::vector<std::byte> out;
  out.reserve(16 + msg.message.size());
  wire::put_u64(out, msg.client_token);
  wire::put_u32(out, static_cast<std::uint32_t>(msg.reason));
  wire::put_u32(out, static_cast<std::uint32_t>(msg.message.size()));
  for (char c : msg.message) out.push_back(static_cast<std::byte>(c));
  return out;
}

bool decode_session_reject(const std::byte* data, std::size_t size,
                           SessionReject& out) {
  if (size < 16) return false;
  wire::Reader r(data, size);
  out.client_token = r.u64();
  out.reason = static_cast<RejectReason>(r.u32());
  const std::uint32_t msg_len = r.u32();
  if (msg_len > r.remaining()) return false;
  out.message.assign(reinterpret_cast<const char*>(r.cursor()), msg_len);
  return true;
}

std::vector<std::byte> encode_session_final(const SessionFinalStats& msg) {
  std::vector<std::byte> out;
  out.reserve(24);
  wire::put_u64(out, msg.bytes_ok);
  wire::put_u64(out, msg.chunks_ok);
  wire::put_u64(out, msg.verify_failures);
  return out;
}

bool decode_session_final(const std::byte* data, std::size_t size,
                          SessionFinalStats& out) {
  if (size < 24) return false;
  wire::Reader r(data, size);
  out.bytes_ok = r.u64();
  out.chunks_ok = r.u64();
  out.verify_failures = r.u64();
  return true;
}

// ---------------------------------------------------------------------------
// TenantState / TenantTable.

TenantState::TenantState(std::string name, const TenantQuota& quota,
                         telemetry::MetricsRegistry& registry)
    : bytes_admitted(*registry.counter("tenant." + name + ".bytes_admitted")),
      rejects(*registry.counter("tenant." + name + ".rejects")),
      throttle_defers(*registry.counter("tenant." + name + ".throttle_defers")),
      busy_ns(*registry.counter("tenant." + name + ".busy_ns")),
      name_(std::move(name)),
      quota_(quota),
      // Burst = 1s of rate so a tenant idle for a while cannot dump an
      // unbounded backlog through admission in one tick.
      bucket_(quota.rate_bytes_per_s, quota.rate_bytes_per_s) {
  registry.register_callback("tenant." + name_ + ".sessions",
                             [this] { return static_cast<double>(sessions()); });
  registry.register_callback("tenant." + name_ + ".buffer_bytes", [this] {
    return static_cast<double>(buffer_bytes());
  });
}

bool TenantState::try_reserve_buffer(std::uint64_t bytes) {
  if (quota_.max_buffer_bytes == 0) {
    buffer_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    return true;
  }
  const std::uint64_t prev =
      buffer_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  if (prev + bytes > quota_.max_buffer_bytes) {
    buffer_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void TenantState::release_buffer(std::uint64_t bytes) {
  buffer_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
}

bool TenantState::try_add_session() {
  const int prev = sessions_.fetch_add(1, std::memory_order_relaxed);
  if (quota_.max_sessions > 0 && prev >= quota_.max_sessions) {
    sessions_.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void TenantState::remove_session() {
  sessions_.fetch_sub(1, std::memory_order_relaxed);
}

TenantState* TenantTable::configure(const std::string& name,
                                    const TenantQuota& quota) {
  std::lock_guard lock(mutex_);
  auto it = tenants_.find(name);
  if (it != tenants_.end()) return it->second.get();
  auto state = std::make_unique<TenantState>(name, quota, registry_);
  TenantState* raw = state.get();
  tenants_.emplace(name, std::move(state));
  return raw;
}

TenantState* TenantTable::get_or_create(const std::string& name) {
  const std::string& key = name.empty() ? std::string("default") : name;
  {
    std::lock_guard lock(mutex_);
    auto it = tenants_.find(key);
    if (it != tenants_.end()) return it->second.get();
  }
  return configure(key, default_quota_);
}

TenantState* TenantTable::find(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto it = tenants_.find(name);
  return it != tenants_.end() ? it->second.get() : nullptr;
}

std::vector<TenantState*> TenantTable::list() const {
  std::lock_guard lock(mutex_);
  std::vector<TenantState*> out;
  out.reserve(tenants_.size());
  for (const auto& [_, state] : tenants_) out.push_back(state.get());
  return out;
}

// ---------------------------------------------------------------------------
// ServeSession / SessionRegistry.

namespace {
std::string session_metric(std::uint32_t id, const char* leaf) {
  return "session." + std::to_string(id) + "." + leaf;
}
}  // namespace

ServeSession::ServeSession(std::uint32_t id, TenantState* tenant,
                           const SessionOpenRequest& open,
                           telemetry::MetricsRegistry& registry)
    : bytes_ok(*registry.counter(session_metric(id, "bytes_ok"))),
      chunks_ok(*registry.counter(session_metric(id, "chunks_ok"))),
      verify_failures(*registry.counter(session_metric(id, "verify_failures"))),
      busy_ns(*registry.counter(session_metric(id, "busy_ns"))),
      id_(id),
      tenant_(tenant),
      expected_bytes_(open.expected_bytes) {
  // Callbacks rather than gauges: state/inflight already live in this
  // object's atomics, and a polled view can never go stale. `this` outlives
  // the registry references only because SessionRegistry hands out
  // shared_ptrs that the server's registry-callback wrapper captures — see
  // SessionServer::register_session_callbacks.
}

void ServeSession::mark_active() {
  SessionLifecycle expected = SessionLifecycle::kAdmitted;
  state_.compare_exchange_strong(expected, SessionLifecycle::kActive,
                                 std::memory_order_acq_rel,
                                 std::memory_order_relaxed);
}

SessionFinalStats ServeSession::final_stats() const {
  SessionFinalStats out;
  out.bytes_ok = bytes_ok.value();
  out.chunks_ok = chunks_ok.value();
  out.verify_failures = verify_failures.value();
  return out;
}

SessionRegistry::AdmitResult SessionRegistry::admit(
    const SessionOpenRequest& open, TenantState* tenant,
    telemetry::MetricsRegistry& registry) {
  AdmitResult result;
  std::lock_guard lock(mutex_);
  if (live_.size() >= max_sessions_) {
    result.reason = RejectReason::kAtCapacity;
    return result;
  }
  if (!tenant->try_add_session()) {
    result.reason = RejectReason::kTenantSessions;
    return result;
  }
  const std::uint32_t id = next_id_++;
  result.session = std::make_shared<ServeSession>(id, tenant, open, registry);
  live_.emplace(id, result.session);
  live_count_.store(live_.size(), std::memory_order_relaxed);
  admitted_total_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

std::shared_ptr<ServeSession> SessionRegistry::get(std::uint32_t id) const {
  std::lock_guard lock(mutex_);
  auto it = live_.find(id);
  return it != live_.end() ? it->second : nullptr;
}

void SessionRegistry::remove(std::uint32_t id) {
  std::shared_ptr<ServeSession> doomed;
  std::lock_guard lock(mutex_);
  auto it = live_.find(id);
  if (it == live_.end()) return;
  doomed = std::move(it->second);  // destructor (if last ref) outside the map
  live_.erase(it);
  live_count_.store(live_.size(), std::memory_order_relaxed);
  doomed->tenant()->remove_session();
}

std::vector<std::shared_ptr<ServeSession>> SessionRegistry::list() const {
  std::lock_guard lock(mutex_);
  std::vector<std::shared_ptr<ServeSession>> out;
  out.reserve(live_.size());
  for (const auto& [_, session] : live_) out.push_back(session);
  return out;
}

}  // namespace automdt::serve
