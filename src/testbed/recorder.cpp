#include "testbed/recorder.hpp"

#include <cmath>

#include "common/stats.hpp"

namespace automdt::testbed {

std::optional<double> TimeSeriesRecorder::time_to_reach(Stage stage, int level,
                                                        int slack,
                                                        double hold_s) const {
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].threads[stage] < level - slack) continue;
    // Candidate: require it to hold until time + hold_s.
    const double t0 = points_[i].time_s;
    bool held = true;
    for (std::size_t j = i; j < points_.size() && points_[j].time_s < t0 + hold_s;
         ++j) {
      if (points_[j].threads[stage] < level - slack) {
        held = false;
        break;
      }
    }
    if (held) return t0;
  }
  return std::nullopt;
}

std::optional<double> TimeSeriesRecorder::time_to_throughput(
    double target_mbps, double fraction) const {
  const double threshold = target_mbps * fraction;
  for (const auto& p : points_) {
    if (p.throughput_mbps.write >= threshold) return p.time_s;
  }
  return std::nullopt;
}

double TimeSeriesRecorder::mean_throughput(Stage stage, double from_s,
                                           double to_s) const {
  RunningStats s;
  for (const auto& p : points_) {
    if (p.time_s >= from_s && p.time_s < to_s) s.add(p.throughput_mbps[stage]);
  }
  return s.mean();
}

double TimeSeriesRecorder::concurrency_stddev(Stage stage, double from_s,
                                              double to_s) const {
  RunningStats s;
  for (const auto& p : points_) {
    if (p.time_s >= from_s && p.time_s < to_s)
      s.add(static_cast<double>(p.threads[stage]));
  }
  return s.stddev();
}

void TimeSeriesRecorder::write_csv(std::ostream& os) const {
  os << "time_s,n_read,n_network,n_write,t_read_mbps,t_network_mbps,"
        "t_write_mbps,reward,sender_buffer_bytes,receiver_buffer_bytes\n";
  for (const auto& p : points_) {
    os << p.time_s << ',' << p.threads.read << ',' << p.threads.network << ','
       << p.threads.write << ',' << p.throughput_mbps.read << ','
       << p.throughput_mbps.network << ',' << p.throughput_mbps.write << ','
       << p.reward << ',' << p.sender_buffer_used << ','
       << p.receiver_buffer_used << '\n';
  }
}

}  // namespace automdt::testbed
