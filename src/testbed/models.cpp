#include "testbed/models.hpp"

#include <cmath>
#include <stdexcept>

#include "common/units.hpp"

namespace automdt::testbed {
namespace {

/// Efficiency multiplier: 1 up to the knee, then 1/(1 + f*(n-knee)).
double contention_efficiency(int n, int knee, double factor) {
  if (n <= knee) return 1.0;
  return 1.0 / (1.0 + factor * static_cast<double>(n - knee));
}

}  // namespace

double StorageModel::rate_mbps(int threads, double mean_file_bytes) const {
  if (threads <= 0) return 0.0;
  // Per-file overhead shaves the per-thread rate: a thread spends
  // S / r seconds streaming plus `o` seconds of bookkeeping per file, so its
  // effective rate is S / (S/r + o).
  double per_thread = config_.per_thread_mbps;
  if (config_.per_file_overhead_s > 0.0 && mean_file_bytes > 0.0) {
    const double r_bytes = mbps(per_thread);  // bytes/s
    const double stream_time = mean_file_bytes / r_bytes;
    per_thread = to_mbps(mean_file_bytes /
                         (stream_time + config_.per_file_overhead_s));
  }
  const double linear = per_thread * threads;
  const double capped = std::min(linear, config_.aggregate_mbps);
  return capped * contention_efficiency(threads, config_.contention_knee,
                                        config_.contention_factor);
}

double LinkModel::rate_at(int streams, double mean_file_bytes,
                          double background_mbps) const {
  if (streams <= 0) return 0.0;
  double per_stream = config_.per_stream_mbps;
  if (config_.per_file_overhead_s > 0.0 && mean_file_bytes > 0.0) {
    const double r_bytes = mbps(per_stream);
    const double stream_time = mean_file_bytes / r_bytes;
    per_stream = to_mbps(mean_file_bytes /
                         (stream_time + config_.per_file_overhead_s));
  }
  const double linear = per_stream * streams;
  const double available =
      std::max(0.0, config_.aggregate_mbps - background_mbps);
  const double capped = std::min(linear, available);
  return capped * contention_efficiency(streams, config_.contention_knee,
                                        config_.contention_factor);
}

double LinkModel::steady_rate_mbps(int streams,
                                   double mean_file_bytes) const {
  return rate_at(streams, mean_file_bytes, config_.background_mbps);
}

double LinkModel::trace_background_at(double t_s) const {
  const auto& trace = config_.background_trace;
  if (trace.empty()) return config_.background_mbps;
  // Loop the trace (piecewise constant between samples).
  const double span = trace.back().first;
  double t = span > 0.0 ? std::fmod(t_s, span) : 0.0;
  double value = trace.front().second;
  for (const auto& [time, mbps_at] : trace) {
    if (time > t) break;
    value = mbps_at;
  }
  return std::clamp(value, 0.0, config_.aggregate_mbps * 0.95);
}

std::vector<std::pair<double, double>> parse_background_trace(
    const std::string& csv_text) {
  std::vector<std::pair<double, double>> out;
  std::size_t pos = 0;
  int lineno = 0;
  while (pos < csv_text.size()) {
    std::size_t end = csv_text.find('\n', pos);
    if (end == std::string::npos) end = csv_text.size();
    std::string line = csv_text.substr(pos, end - pos);
    pos = end + 1;
    ++lineno;
    // Strip comments / whitespace-only lines and an optional header.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    if (line.find_first_not_of(" \t\r0123456789.,eE+-") != std::string::npos) {
      if (lineno == 1) continue;  // header row
      throw std::invalid_argument("background trace line " +
                                  std::to_string(lineno) + ": '" + line +
                                  "'");
    }
    const std::size_t comma = line.find(',');
    if (comma == std::string::npos)
      throw std::invalid_argument("background trace line " +
                                  std::to_string(lineno) +
                                  ": expected time_s,mbps");
    const double t = std::stod(line.substr(0, comma));
    const double v = std::stod(line.substr(comma + 1));
    if (!out.empty() && t <= out.back().first)
      throw std::invalid_argument(
          "background trace: timestamps must increase (line " +
          std::to_string(lineno) + ")");
    if (v < 0.0)
      throw std::invalid_argument("background trace: negative rate (line " +
                                  std::to_string(lineno) + ")");
    out.emplace_back(t, v);
  }
  return out;
}

double LinkModel::rate_mbps(int streams, double dt_s, double mean_file_bytes,
                            Rng& rng) {
  // Stream count ramps toward the target with time constant ~5 RTTs
  // (slow-start plus fair-share convergence, coarsely).
  const double tau = std::max(5.0 * config_.rtt_ms / 1000.0, 1e-3);
  const double alpha = 1.0 - std::exp(-dt_s / tau);
  effective_streams_ += (static_cast<double>(streams) - effective_streams_) *
                        alpha;

  // Background traffic: trace-driven if a trace is loaded, else an
  // Ornstein–Uhlenbeck drift around the configured mean.
  if (!config_.background_trace.empty()) {
    trace_clock_s_ += dt_s;
    background_current_mbps_ = trace_background_at(trace_clock_s_);
  } else if (config_.background_sigma_mbps > 0.0) {
    const double theta = dt_s / std::max(config_.background_tau_s, 1e-3);
    background_current_mbps_ +=
        (config_.background_mbps - background_current_mbps_) * theta +
        config_.background_sigma_mbps * std::sqrt(2.0 * theta) * rng.normal();
    background_current_mbps_ = std::clamp(background_current_mbps_, 0.0,
                                          config_.aggregate_mbps * 0.9);
  }

  if (effective_streams_ <= 0.0) return 0.0;
  const double whole = std::floor(effective_streams_);
  const double frac = effective_streams_ - whole;
  const int lo = static_cast<int>(whole);
  double rate =
      rate_at(lo, mean_file_bytes, background_current_mbps_) * (1.0 - frac) +
      rate_at(lo + 1, mean_file_bytes, background_current_mbps_) * frac;

  if (config_.jitter > 0.0) {
    rate *= std::max(0.0, 1.0 + config_.jitter * rng.normal());
  }
  return rate;
}

}  // namespace automdt::testbed
