// Transfer workloads (paper §V): Dataset A — 1000 x 1 GB "large" files;
// Dataset B — 1 TB of mixed files between 100 KB and 2 GB; plus the smaller
// 100 x 1 GB set used for the Fig. 3 convergence experiment and an infinite
// dataset for probe/training runs.
//
// The fluid emulator needs only the total byte count and the mean file size
// (which sets the per-file overhead penalty), but we generate and keep the
// full file-size list so the threaded engine and tests can use real file
// inventories.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace automdt::testbed {

class Dataset {
 public:
  /// `count` files of identical `file_bytes` size.
  static Dataset uniform(std::size_t count, double file_bytes,
                         std::string name = "uniform");

  /// Explicit file-size list (workload catalogs, trace-derived inventories).
  static Dataset from_files(std::string name, std::vector<double> file_bytes);

  /// Paper Dataset A: 1000 x 1 GB.
  static Dataset paper_large();

  /// Paper Fig. 3 workload: 100 x 1 GB.
  static Dataset paper_fig3();

  /// Paper Dataset B: ~total_bytes of files log-uniform in
  /// [min_bytes, max_bytes] (default 100 KB .. 2 GB, 1 TB total).
  static Dataset mixed(Rng& rng, double total_bytes = 1.0 * kTB,
                       double min_bytes = 100.0 * kKB,
                       double max_bytes = 2.0 * kGB);

  /// Unbounded supply (exploration / training): total_bytes() reports +inf.
  static Dataset infinite();

  const std::string& name() const { return name_; }
  double total_bytes() const { return total_bytes_; }
  std::size_t file_count() const { return files_.size(); }
  const std::vector<double>& files() const { return files_; }
  bool is_infinite() const { return infinite_; }

  /// Mean file size; for the infinite dataset this is a nominal 1 GB.
  double mean_file_bytes() const;

 private:
  std::string name_;
  std::vector<double> files_;
  double total_bytes_ = 0.0;
  bool infinite_ = false;
};

}  // namespace automdt::testbed
