// Named testbed scenarios mirroring the paper's evaluation setups (§V):
//
//   * fabric_ncsa_tacc — the high-bandwidth FABRIC pair (ConnectX-6 NICs,
//     NVMe P4510 storage) used for Fig. 3 and Table I; AutoMDT reports
//     ~24 Gbps there with ~20 network streams.
//   * cloudlab_1g — the CloudLab c240g5 pair with 1 Gbps NICs and 8 GiB RAM.
//   * bottleneck_read / _network / _write — the Fig. 5 scenarios, produced by
//     throttling per-connection rates to (80,160,200), (205,75,195) and
//     (200,150,70) Mbps on a 1 Gbps-class path; optimal stream counts are
//     <13,7,5>, <5,14,5>, <5,7,15> respectively.
//
// Each preset carries the expected optimal tuple so benches and tests can
// score convergence against the paper's ground truth.
#pragma once

#include <string>
#include <vector>

#include "testbed/environment.hpp"

namespace automdt::testbed {

struct ScenarioPreset {
  std::string name;
  TestbedConfig config;
  /// The paper's ground-truth optimal stream counts for this scenario.
  ConcurrencyTuple expected_optimal;
};

ScenarioPreset fabric_ncsa_tacc();
ScenarioPreset cloudlab_1g();
ScenarioPreset bottleneck_read();
ScenarioPreset bottleneck_network();
ScenarioPreset bottleneck_write();

/// All Fig. 5 bottleneck presets in paper column order.
std::vector<ScenarioPreset> fig5_presets();

}  // namespace automdt::testbed
