#include "testbed/dataset.hpp"

#include <cmath>
#include <limits>

namespace automdt::testbed {

Dataset Dataset::uniform(std::size_t count, double file_bytes,
                         std::string name) {
  Dataset d;
  d.name_ = std::move(name);
  d.files_.assign(count, file_bytes);
  d.total_bytes_ = file_bytes * static_cast<double>(count);
  return d;
}

Dataset Dataset::from_files(std::string name, std::vector<double> file_bytes) {
  Dataset d;
  d.name_ = std::move(name);
  d.files_ = std::move(file_bytes);
  for (double s : d.files_) d.total_bytes_ += s;
  return d;
}

Dataset Dataset::paper_large() {
  return uniform(1000, 1.0 * kGB, "A (Large: 1000 x 1GB)");
}

Dataset Dataset::paper_fig3() {
  return uniform(100, 1.0 * kGB, "Fig3 (100 x 1GB)");
}

Dataset Dataset::mixed(Rng& rng, double total_bytes, double min_bytes,
                       double max_bytes) {
  Dataset d;
  d.name_ = "B (Mixed: 100KB-2GB)";
  const double log_lo = std::log(min_bytes);
  const double log_hi = std::log(max_bytes);
  double acc = 0.0;
  while (acc < total_bytes) {
    const double size = std::exp(rng.uniform(log_lo, log_hi));
    d.files_.push_back(size);
    acc += size;
  }
  d.total_bytes_ = acc;
  return d;
}

Dataset Dataset::infinite() {
  Dataset d;
  d.name_ = "infinite";
  d.infinite_ = true;
  d.total_bytes_ = std::numeric_limits<double>::infinity();
  return d;
}

double Dataset::mean_file_bytes() const {
  if (infinite_ || files_.empty()) return 1.0 * kGB;
  return total_bytes_ / static_cast<double>(files_.size());
}

}  // namespace automdt::testbed
