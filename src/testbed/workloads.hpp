// Science workload catalog.
//
// The paper's introduction motivates AutoMDT with the data deluge from
// distributed science: genome sequencing runs growing from ~5 MB (2006) to
// >700 GB (2024) per run, detector experiments (ATLAS, Belle II, LIGO), and
// sky surveys (SDSS, LSST, Dark Energy Survey). This catalog provides
// synthetic datasets with the *file-size signatures* of those domains, for
// examples and workload-sensitivity experiments:
//
//   genomics_run        — a handful of huge FASTQ/BAM outputs (~700 GB run
//                         split into lane files) plus small index/QC files
//   sky_survey_night    — thousands of uniform CCD exposures (~100 MB each)
//   detector_snapshots  — heavy-tailed event files, 100 MB .. 10 GB
//   climate_model       — mixed NetCDF output: large history files + many
//                         small diagnostics
//
// All draws are deterministic given the Rng, like everything else here.
#pragma once

#include "testbed/dataset.hpp"

namespace automdt::testbed {

/// One sequencing run: `lanes` lane files of ~87 GB (700 GB run / 8 lanes)
/// plus per-lane index + QC summary files in the tens of MB.
Dataset genomics_run(Rng& rng, int lanes = 8);

/// One survey night: `exposures` CCD frames of ~100 MB with ±10% jitter.
Dataset sky_survey_night(Rng& rng, int exposures = 2000);

/// Event data with a heavy (log-normal) tail between ~100 MB and ~10 GB,
/// totalling ~`total_bytes`.
Dataset detector_snapshots(Rng& rng, double total_bytes = 500.0 * kGB);

/// Climate model output: `months` large history files (~25 GB) each
/// accompanied by ~40 small diagnostics files (1-50 MB).
Dataset climate_model(Rng& rng, int months = 12);

}  // namespace automdt::testbed
