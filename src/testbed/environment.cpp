#include "testbed/environment.hpp"

#include <algorithm>
#include <cmath>

namespace automdt::testbed {

EmulatedEnvironment::EmulatedEnvironment(TestbedConfig config, Dataset dataset)
    : config_(config),
      dataset_(std::move(dataset)),
      source_(config.source_storage),
      dest_(config.dest_storage),
      link_(config.link),
      sender_buffer_(config.sender_buffer_bytes),
      receiver_buffer_(config.receiver_buffer_bytes),
      rng_(0xC0FFEE) {
  scale_.max_threads = config_.max_threads;
  scale_.rate_scale_mbps = std::max(
      {config_.source_storage.aggregate_mbps, config_.link.aggregate_mbps,
       config_.dest_storage.aggregate_mbps, 1.0});
  scale_.sender_capacity = config_.sender_buffer_bytes;
  scale_.receiver_capacity = config_.receiver_buffer_bytes;
}

void EmulatedEnvironment::set_dataset(Dataset dataset) {
  dataset_ = std::move(dataset);
  time_s_ = 0.0;
  bytes_read_ = bytes_sent_ = bytes_written_ = 0.0;
  sender_buffer_.reset();
  receiver_buffer_.reset();
  link_.reset();
  last_throughputs_ = {};
}

void EmulatedEnvironment::set_per_thread_rates(const StageTriple& rates) {
  source_.set_per_thread_mbps(rates.read);
  link_.set_per_stream_mbps(rates.network);
  dest_.set_per_thread_mbps(rates.write);
}

std::vector<double> EmulatedEnvironment::reset(Rng& rng) {
  rng_ = rng.split();
  time_s_ = 0.0;
  bytes_read_ = bytes_sent_ = bytes_written_ = 0.0;
  sender_buffer_.reset();
  receiver_buffer_.reset();
  link_.reset();
  last_throughputs_ = {};
  last_action_ = ConcurrencyTuple{1, 1, 1};
  return build_observation(scale_, last_action_, last_throughputs_,
                           sender_buffer_.free_space(),
                           receiver_buffer_.free_space());
}

bool EmulatedEnvironment::finished() const {
  // The fluid integration accumulates doubles; allow a byte of slack so the
  // final drop of a transfer cannot leave the run asymptotically unfinished.
  return !dataset_.is_infinite() &&
         bytes_written_ >= dataset_.total_bytes() - 1.0;
}

double EmulatedEnvironment::average_throughput_mbps() const {
  if (time_s_ <= 0.0) return 0.0;
  return to_mbps(bytes_written_ / time_s_);
}

double EmulatedEnvironment::jittered(double rate_mbps) {
  if (config_.storage_jitter <= 0.0) return rate_mbps;
  return rate_mbps * std::max(0.0, 1.0 + config_.storage_jitter * rng_.normal());
}

EnvStep EmulatedEnvironment::step(const ConcurrencyTuple& action) {
  last_action_ = action.clamped(1, config_.max_threads);
  const double mean_file = dataset_.mean_file_bytes();

  double read_acc = 0.0, sent_acc = 0.0, written_acc = 0.0;
  const int subticks = std::max(
      1, static_cast<int>(std::round(config_.probe_interval_s /
                                     config_.subtick_s)));
  const double dt = config_.probe_interval_s / subticks;

  for (int i = 0; i < subticks; ++i) {
    // Read: source FS -> sender buffer, bounded by unread bytes and space.
    const double unread =
        dataset_.is_infinite()
            ? std::numeric_limits<double>::infinity()
            : std::max(0.0, dataset_.total_bytes() - bytes_read_);
    const double read_rate =
        mbps(jittered(source_.rate_mbps(last_action_.read, mean_file)));
    double want_read = std::min(read_rate * dt, unread);
    const double got_read = sender_buffer_.fill(want_read);
    bytes_read_ += got_read;
    read_acc += got_read;

    // Network: sender buffer -> receiver buffer, bounded by staged bytes and
    // receiver space. The link model advances its stream-ramp state.
    const double net_rate =
        mbps(link_.rate_mbps(last_action_.network, dt, mean_file, rng_));
    double want_send = std::min(net_rate * dt, sender_buffer_.used());
    want_send = std::min(want_send, receiver_buffer_.free_space());
    sender_buffer_.drain(want_send);
    receiver_buffer_.fill(want_send);
    bytes_sent_ += want_send;
    sent_acc += want_send;

    // Write: receiver buffer -> destination FS.
    const double write_rate =
        mbps(jittered(dest_.rate_mbps(last_action_.write, mean_file)));
    const double got_write =
        receiver_buffer_.drain(write_rate * dt);
    bytes_written_ += got_write;
    written_acc += got_write;

    time_s_ += dt;
    if (finished()) break;
  }

  const double interval = config_.probe_interval_s;
  last_throughputs_ = StageThroughputs{to_mbps(read_acc / interval),
                                       to_mbps(sent_acc / interval),
                                       to_mbps(written_acc / interval)};

  EnvStep out;
  out.observation = build_observation(scale_, last_action_, last_throughputs_,
                                      sender_buffer_.free_space(),
                                      receiver_buffer_.free_space());
  out.throughputs_mbps = last_throughputs_;
  out.reward = total_utility(last_throughputs_, last_action_, config_.utility);
  out.done = finished();
  return out;
}

}  // namespace automdt::testbed
