// EmulatedEnvironment: the virtual-time stand-in for a production transfer
// between two DTNs (DESIGN.md §2 hardware substitution).
//
// Data flows source storage -> sender staging buffer -> WAN link -> receiver
// staging buffer -> destination storage, integrated as a fluid model in small
// sub-ticks inside each 1-second probe interval. Controllers (AutoMDT, Marlin,
// joint GD, Globus-static, monolithic) interact with it only through the Env
// interface — thread counts in, per-second throughputs + buffer occupancy
// out — exactly the probe surface a real transfer tool exposes.
//
// Unlike the training simulator (sim::DynamicsSimulator), this environment
// tracks a concrete dataset (finite bytes; done when fully written), models
// TCP stream ramp-up, contention over-subscription penalties, per-file
// overheads, and stochastic jitter. The gap between the two is deliberate:
// it is the sim-to-real gap the offline-trained agent must bridge.
#pragma once

#include <optional>

#include "common/env.hpp"
#include "common/utility.hpp"
#include "testbed/dataset.hpp"
#include "testbed/models.hpp"

namespace automdt::testbed {

struct TestbedConfig {
  StorageConfig source_storage{};
  StorageConfig dest_storage{};
  LinkConfig link{};
  double sender_buffer_bytes = 16.0 * kGiB;
  double receiver_buffer_bytes = 16.0 * kGiB;
  int max_threads = 30;
  double probe_interval_s = 1.0;  // one Env::step == one probe interval
  double subtick_s = 0.1;         // fluid integration step
  double storage_jitter = 0.0;    // multiplicative noise on storage rates
  UtilityParams utility{};
};

class EmulatedEnvironment final : public Env {
 public:
  EmulatedEnvironment(TestbedConfig config, Dataset dataset);

  // ---- Env interface ----
  std::vector<double> reset(Rng& rng) override;
  EnvStep step(const ConcurrencyTuple& action) override;
  int max_threads() const override { return config_.max_threads; }

  // ---- transfer progress ----
  double virtual_time_s() const { return time_s_; }
  double bytes_written() const { return bytes_written_; }
  double total_bytes() const { return dataset_.total_bytes(); }
  bool finished() const;

  /// Mean end-to-end rate so far: bytes written / elapsed time (Mbps).
  double average_throughput_mbps() const;

  const TestbedConfig& config() const { return config_; }
  const Dataset& dataset() const { return dataset_; }
  const ObservationScale& observation_scale() const { return scale_; }

  /// Override observation normalization (production must reuse the scale the
  /// agent was *trained* with; see simulator_env.hpp).
  void set_observation_scale(const ObservationScale& scale) { scale_ = scale; }

  /// Swap the dataset (resets progress).
  void set_dataset(Dataset dataset);

  /// Retune the three per-thread/per-stream throttles mid-transfer without
  /// resetting pipeline state — the "changing system and network conditions"
  /// the paper's abstract says AutoMDT adapts to quickly.
  void set_per_thread_rates(const StageTriple& mbps);

  // Introspection used by tests.
  double sender_buffer_used() const { return sender_buffer_.used(); }
  double receiver_buffer_used() const { return receiver_buffer_.used(); }
  double bytes_read() const { return bytes_read_; }
  double bytes_sent() const { return bytes_sent_; }

 private:
  double jittered(double rate_mbps);

  TestbedConfig config_;
  Dataset dataset_;
  StorageModel source_;
  StorageModel dest_;
  LinkModel link_;
  StagingBuffer sender_buffer_;
  StagingBuffer receiver_buffer_;
  ObservationScale scale_;
  Rng rng_;  // jitter stream; reseeded from reset()'s rng

  double time_s_ = 0.0;
  double bytes_read_ = 0.0;
  double bytes_sent_ = 0.0;
  double bytes_written_ = 0.0;
  StageThroughputs last_throughputs_{};
  ConcurrencyTuple last_action_{1, 1, 1};
};

}  // namespace automdt::testbed
