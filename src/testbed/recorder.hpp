// Per-second time series of a transfer run: the raw material behind the
// paper's Fig. 3 and Fig. 5 plots (concurrency traces and throughput traces
// over time) and the convergence metrics quoted in §V ("reaches 13 TCP
// streams within 6 seconds").
#pragma once

#include <optional>
#include <ostream>
#include <vector>

#include "common/concurrency_tuple.hpp"

namespace automdt::testbed {

struct TimePoint {
  double time_s = 0.0;
  ConcurrencyTuple threads;
  StageThroughputs throughput_mbps;
  double reward = 0.0;
  double sender_buffer_used = 0.0;
  double receiver_buffer_used = 0.0;
};

class TimeSeriesRecorder {
 public:
  void add(TimePoint p) { points_.push_back(p); }
  const std::vector<TimePoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  void clear() { points_.clear(); }

  /// First time at which `stage`'s thread count reached `level` and stayed
  /// there (within `slack`) for `hold_s` consecutive seconds. nullopt if never.
  std::optional<double> time_to_reach(Stage stage, int level, int slack = 0,
                                      double hold_s = 3.0) const;

  /// First time end-to-end (write) throughput reached `fraction` of
  /// `target_mbps`. nullopt if never.
  std::optional<double> time_to_throughput(double target_mbps,
                                           double fraction = 0.9) const;

  /// Mean throughput of a stage over [from_s, to_s).
  double mean_throughput(Stage stage, double from_s, double to_s) const;

  /// Standard deviation of a stage's thread count over [from_s, to_s) — the
  /// stability metric ("Marlin's values continue to fluctuate").
  double concurrency_stddev(Stage stage, double from_s, double to_s) const;

  void write_csv(std::ostream& os) const;

 private:
  std::vector<TimePoint> points_;
};

}  // namespace automdt::testbed
