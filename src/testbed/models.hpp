// Fluid-approximation models of the physical resources in a DTN pair:
// storage devices (source reads, destination writes) and the WAN link.
//
// These stand in for the paper's FABRIC/CloudLab hardware (DESIGN.md §2).
// Each model answers one question — "at what aggregate rate does this
// resource move data given n worker threads/streams?" — and captures the
// three behaviours the optimizer must cope with:
//
//   1. per-thread caps (sysadmin throttles, per-stream TCP fair-share),
//   2. aggregate device/link capacity, and
//   3. over-subscription: efficiency degrades past a contention knee, so
//      "just use 100 threads everywhere" (the monolithic strategy) actively
//      hurts — the paper's §III motivation.
//
// The link additionally models TCP ramp-up: newly added streams take a few
// RTTs to reach their fair share, so concurrency changes are not visible in
// throughput instantly.
#pragma once

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace automdt::testbed {

struct StorageConfig {
  double per_thread_mbps = 2000.0;  // thread-level I/O speed (HW or throttle)
  double aggregate_mbps = 30000.0;  // device bandwidth
  int contention_knee = 16;         // threads beyond which efficiency decays
  double contention_factor = 0.02;  // fractional loss per thread past knee
  double per_file_overhead_s = 0.002;  // open/close/sync cost per file
};

class StorageModel {
 public:
  explicit StorageModel(StorageConfig config) : config_(config) {}

  /// Aggregate achievable rate (Mbps) with `threads` workers processing files
  /// of `mean_file_bytes` each.
  double rate_mbps(int threads, double mean_file_bytes) const;

  const StorageConfig& config() const { return config_; }

  /// Retune the per-thread throttle mid-run (a sysadmin changes tc rules, a
  /// device degrades) — the "changing system conditions" the optimizer must
  /// adapt to.
  void set_per_thread_mbps(double mbps) { config_.per_thread_mbps = mbps; }

 private:
  StorageConfig config_;
};

struct LinkConfig {
  double per_stream_mbps = 1200.0;  // per-connection throttle / fair share
  double aggregate_mbps = 25000.0;  // bottleneck link capacity
  double rtt_ms = 30.0;             // round-trip time, drives stream ramp-up
  int contention_knee = 48;         // streams beyond which goodput degrades
  double contention_factor = 0.01;
  double jitter = 0.0;              // multiplicative throughput noise (stddev)
  double background_mbps = 0.0;     // mean competing traffic on the link
  // Slowly-varying background traffic (production links share bandwidth with
  // other science flows): an Ornstein–Uhlenbeck process around
  // background_mbps with stddev background_sigma_mbps and time constant
  // background_tau_s. This is what forces online optimizers to keep
  // re-converging over long transfers, while a pretrained policy adapts
  // within one probe interval. 0 sigma = static background.
  double background_sigma_mbps = 0.0;
  double background_tau_s = 60.0;
  // Trace-driven background (substitute for unavailable production traces,
  // DESIGN.md §2): piecewise-constant (time_s, mbps) samples, looped. When
  // non-empty this overrides the OU process.
  std::vector<std::pair<double, double>> background_trace;
  double per_file_overhead_s = 0.0; // stream idle time between files
                                    // (per-file handshake / re-ramp)
};

/// Parse a background-traffic trace from CSV text with lines "time_s,mbps"
/// (header optional, '#' comments allowed). Throws std::invalid_argument on
/// malformed rows or non-monotonic timestamps.
std::vector<std::pair<double, double>> parse_background_trace(
    const std::string& csv_text);

class LinkModel {
 public:
  explicit LinkModel(LinkConfig config)
      : config_(config), background_current_mbps_(config.background_mbps) {}

  /// Advance the stream ramp state by dt and return the achievable aggregate
  /// rate (Mbps) with `streams` connections requested and files of
  /// `mean_file_bytes`. Stateful: stream count changes take ~5 RTTs to take
  /// full effect.
  double rate_mbps(int streams, double dt_s, double mean_file_bytes, Rng& rng);

  /// Steady-state rate with no ramp/jitter (what a probe would converge to),
  /// at the mean background level.
  double steady_rate_mbps(int streams,
                          double mean_file_bytes = 1e12) const;

 private:
  /// Rate at an explicit background-traffic level.
  double rate_at(int streams, double mean_file_bytes,
                 double background_mbps) const;

 public:

  void reset() {
    effective_streams_ = 0.0;
    background_current_mbps_ = config_.background_mbps;
    trace_clock_s_ = 0.0;
  }
  double effective_streams() const { return effective_streams_; }
  double current_background_mbps() const { return background_current_mbps_; }

  const LinkConfig& config() const { return config_; }

  /// Retune the per-stream throttle mid-run; ramp and background state
  /// persist.
  void set_per_stream_mbps(double mbps) { config_.per_stream_mbps = mbps; }

 private:
  double trace_background_at(double t_s) const;

  LinkConfig config_;
  double effective_streams_ = 0.0;
  double background_current_mbps_ = 0.0;
  double trace_clock_s_ = 0.0;
};

/// Bounded staging buffer (the tmpfs directory on a DTN).
class StagingBuffer {
 public:
  explicit StagingBuffer(double capacity_bytes)
      : capacity_(capacity_bytes) {}

  double capacity() const { return capacity_; }
  double used() const { return used_; }
  double free_space() const { return capacity_ - used_; }

  /// Add up to `bytes`, returning the amount actually accepted.
  double fill(double bytes) {
    const double accepted = std::min(bytes, free_space());
    used_ += accepted;
    return accepted;
  }

  /// Remove up to `bytes`, returning the amount actually drained.
  double drain(double bytes) {
    const double removed = std::min(bytes, used_);
    used_ -= removed;
    return removed;
  }

  void reset() { used_ = 0.0; }

 private:
  double capacity_;
  double used_ = 0.0;
};

}  // namespace automdt::testbed
