#include "testbed/presets.hpp"

namespace automdt::testbed {
namespace {

/// A Fig. 5-style scenario: per-connection throttles (Mbps) on a 1 Gbps-class
/// path; every stage's aggregate is capped at the same 1 Gbps so the
/// bottleneck b is 1000 Mbps and n_i* = 1000 / throttle_i.
TestbedConfig throttled_1g(double read_mbps, double network_mbps,
                           double write_mbps) {
  TestbedConfig c;
  c.source_storage.per_thread_mbps = read_mbps;
  c.source_storage.aggregate_mbps = 1000.0;
  c.source_storage.contention_knee = 24;
  c.source_storage.contention_factor = 0.03;
  c.source_storage.per_file_overhead_s = 0.001;

  c.dest_storage.per_thread_mbps = write_mbps;
  c.dest_storage.aggregate_mbps = 1000.0;
  c.dest_storage.contention_knee = 24;
  c.dest_storage.contention_factor = 0.03;
  c.dest_storage.per_file_overhead_s = 0.001;

  c.link.per_stream_mbps = network_mbps;
  c.link.aggregate_mbps = 1000.0;
  c.link.rtt_ms = 30.0;
  c.link.contention_knee = 24;
  c.link.contention_factor = 0.02;
  c.link.jitter = 0.02;

  c.sender_buffer_bytes = 4.0 * kGiB;
  c.receiver_buffer_bytes = 4.0 * kGiB;
  c.max_threads = 30;
  c.storage_jitter = 0.02;
  return c;
}

}  // namespace

ScenarioPreset fabric_ncsa_tacc() {
  TestbedConfig c;
  // NVMe P4510-class source: fast per-thread reads, ~30 Gbps device.
  c.source_storage.per_thread_mbps = 2500.0;
  c.source_storage.aggregate_mbps = 30000.0;
  c.source_storage.contention_knee = 16;
  c.source_storage.contention_factor = 0.03;
  // Per-file turnaround at each endpoint: allocation, open/close/fsync,
  // checksum setup, control-channel ack. A few hundred ms per file is what
  // makes the paper's mixed Dataset B (mean file ~200 MB) run ~25-30%
  // slower than the all-1GB Dataset A (Table I).
  c.source_storage.per_file_overhead_s = 0.3;

  // Destination writes are a bit slower per thread (write amplification).
  c.dest_storage.per_thread_mbps = 2000.0;
  c.dest_storage.aggregate_mbps = 26000.0;
  c.dest_storage.contention_knee = 16;
  c.dest_storage.contention_factor = 0.03;
  c.dest_storage.per_file_overhead_s = 0.3;

  // ConnectX-6 path NCSA -> TACC: ~25 Gbps achievable, ~1.2 Gbps per stream
  // fair share -> ~20 streams to saturate (matches Fig. 3's "required
  // concurrency level of 20").
  c.link.per_stream_mbps = 1200.0;
  c.link.aggregate_mbps = 25000.0;
  c.link.rtt_ms = 28.0;  // Illinois <-> Texas
  c.link.contention_knee = 48;
  c.link.contention_factor = 0.015;
  c.link.jitter = 0.03;
  c.link.per_file_overhead_s = 0.06;  // per-file handshake / stream re-ramp
  // Shared production path: competing science flows come and go on minute
  // timescales, shifting the achievable bandwidth under long transfers.
  c.link.background_mbps = 2000.0;
  c.link.background_sigma_mbps = 1500.0;
  c.link.background_tau_s = 45.0;

  c.sender_buffer_bytes = 16.0 * kGiB;  // 64 GB hosts, tmpfs staging
  c.receiver_buffer_bytes = 16.0 * kGiB;
  c.max_threads = 30;
  c.storage_jitter = 0.02;

  // n_n* = 25000 / 1200 = 20.8 -> 21; n_r* = 10; n_w* = 13.
  return {"FABRIC NCSA->TACC", c, ConcurrencyTuple{10, 21, 13}};
}

ScenarioPreset cloudlab_1g() {
  TestbedConfig c;
  c.source_storage.per_thread_mbps = 150.0;
  c.source_storage.aggregate_mbps = 2000.0;
  c.source_storage.contention_knee = 12;
  c.source_storage.contention_factor = 0.04;
  c.source_storage.per_file_overhead_s = 0.003;

  c.dest_storage.per_thread_mbps = 120.0;
  c.dest_storage.aggregate_mbps = 1600.0;
  c.dest_storage.contention_knee = 12;
  c.dest_storage.contention_factor = 0.04;
  c.dest_storage.per_file_overhead_s = 0.003;

  c.link.per_stream_mbps = 120.0;
  c.link.aggregate_mbps = 1000.0;
  c.link.rtt_ms = 10.0;
  c.link.contention_knee = 20;
  c.link.contention_factor = 0.02;
  c.link.jitter = 0.02;

  c.sender_buffer_bytes = 4.0 * kGiB;  // 8 GiB hosts
  c.receiver_buffer_bytes = 4.0 * kGiB;
  c.max_threads = 30;
  c.storage_jitter = 0.02;

  // Link-bound: n_n* = 1000/120 = 8.3 -> 9; n_r* = 7; n_w* = 9.
  return {"CloudLab c240g5 1G", c, ConcurrencyTuple{7, 9, 9}};
}

ScenarioPreset bottleneck_read() {
  // "we throttled the read threads to 80 Mbps, while write and network
  //  connections were limited to 200 Mbps and 160 Mbps" -> optimal <13,7,5>.
  return {"Read bottleneck (80/160/200)", throttled_1g(80.0, 160.0, 200.0),
          ConcurrencyTuple{13, 7, 5}};
}

ScenarioPreset bottleneck_network() {
  // "we throttled read, network, and write connections to 205, 75, 195 Mbps"
  // -> optimal <5,14,5>.
  return {"Network bottleneck (205/75/195)", throttled_1g(205.0, 75.0, 195.0),
          ConcurrencyTuple{5, 14, 5}};
}

ScenarioPreset bottleneck_write() {
  // "read, network, and write connections were set to 200, 150, 70 Mbps"
  // -> optimal <5,7,15>.
  return {"Write bottleneck (200/150/70)", throttled_1g(200.0, 150.0, 70.0),
          ConcurrencyTuple{5, 7, 15}};
}

std::vector<ScenarioPreset> fig5_presets() {
  return {bottleneck_read(), bottleneck_network(), bottleneck_write()};
}

}  // namespace automdt::testbed
