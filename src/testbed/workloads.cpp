#include "testbed/workloads.hpp"

#include <algorithm>
#include <cmath>

namespace automdt::testbed {

Dataset genomics_run(Rng& rng, int lanes) {
  std::vector<double> files;
  const double run_bytes = 700.0 * kGB;  // one 2024-era sequencing run
  for (int lane = 0; lane < lanes; ++lane) {
    // Lane FASTQ/BAM: the run split across lanes, ±5% from demultiplexing.
    files.push_back(run_bytes / lanes * rng.uniform(0.95, 1.05));
    // Index (.bai-style) and QC summary per lane.
    files.push_back(rng.uniform(20.0, 80.0) * kMB);
    files.push_back(rng.uniform(1.0, 10.0) * kMB);
  }
  return Dataset::from_files("genomics run (~700 GB)", std::move(files));
}

Dataset sky_survey_night(Rng& rng, int exposures) {
  std::vector<double> files;
  files.reserve(static_cast<std::size_t>(exposures));
  for (int i = 0; i < exposures; ++i)
    files.push_back(100.0 * kMB * rng.uniform(0.9, 1.1));
  return Dataset::from_files("sky survey night", std::move(files));
}

Dataset detector_snapshots(Rng& rng, double total_bytes) {
  std::vector<double> files;
  double acc = 0.0;
  while (acc < total_bytes) {
    // Log-normal tail, clamped to [100 MB, 10 GB].
    const double size = std::clamp(rng.log_normal(500.0 * kMB, 1.0),
                                   100.0 * kMB, 10.0 * kGB);
    files.push_back(size);
    acc += size;
  }
  return Dataset::from_files("detector snapshots", std::move(files));
}

Dataset climate_model(Rng& rng, int months) {
  std::vector<double> files;
  for (int m = 0; m < months; ++m) {
    files.push_back(25.0 * kGB * rng.uniform(0.95, 1.05));  // history file
    const int diagnostics = rng.uniform_int(30, 50);
    for (int d = 0; d < diagnostics; ++d)
      files.push_back(rng.uniform(1.0, 50.0) * kMB);
  }
  return Dataset::from_files("climate model output", std::move(files));
}

}  // namespace automdt::testbed
