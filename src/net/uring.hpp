// Minimal io_uring wrapper for the batched-I/O backend (DESIGN.md §12).
//
// The container has no liburing, so this speaks the raw syscall ABI:
// io_uring_setup + two/three mmaps for the SQ/CQ rings, io_uring_register
// for fixed buffers, and io_uring_enter with IORING_ENTER_GETEVENTS as the
// single submit-and-reap syscall. That last point is the whole reason the
// engine wants it — a worker preps one SQE per operation in its chunk batch
// and pays ONE enter for the lot, where the syscall backend pays one (often
// two, recv+poll) per operation.
//
// Threading contract: a ring is single-threaded — each engine worker /
// stream / acceptor reader owns its own UringRing. enters() is atomic so the
// telemetry plane can sum live rings from other threads; everything else is
// owner-only. Rings are intentionally synchronous (prep a batch, then
// submit_and_wait for all of it): completions never outlive the caller's
// borrowed buffers, which is what lets the zero-copy lease path hand raw
// iovecs into the kernel.
//
// Capability probing: available() is the runtime gate the engine's
// EngineConfig::io_backend = kUring request goes through. It caches one
// io_uring_setup attempt per process (kernels without io_uring fail it with
// ENOSYS) and re-reads AUTOMDT_DISABLE_URING on every call so tests and CI
// can force the graceful-fallback path on a capable kernel. On platforms
// without <linux/io_uring.h> this whole file compiles to the unavailable
// stub and the engine stays on the syscall backend.
#pragma once

#include <sys/uio.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace automdt::net {

class UringRing {
 public:
  struct Completion {
    std::uint64_t user_data = 0;
    std::int32_t res = 0;       // bytes transferred, or -errno
    std::uint32_t flags = 0;    // CQE flags (buffer id, more-completions bit)
  };

  // CQE flag bits mirrored from the kernel ABI, so callers don't need a
  // recent <linux/io_uring.h> to decode multishot completions.
  static constexpr std::uint32_t kCqeFlagBuffer = 1u << 0;  // flags>>16 = bid
  static constexpr std::uint32_t kCqeFlagMore = 1u << 1;    // SQE still armed
  static constexpr unsigned kCqeBufferShift = 16;

  /// Can this process use io_uring right now? Kernel probe cached once;
  /// AUTOMDT_DISABLE_URING=<non-zero> re-checked per call forces false.
  static bool available();

  /// Can this kernel additionally do the multishot receive plane (provided-
  /// buffer rings + multishot RECV/ACCEPT)? Implies available().
  /// AUTOMDT_DISABLE_URING_MULTISHOT=<non-zero> re-checked per call forces
  /// false so tests/CI can exercise the single-shot fallback on any kernel.
  static bool multishot_available();

  /// A ring with at least `entries` SQ slots, or null on any setup failure
  /// (callers fall back to the syscall path — never an error).
  static std::unique_ptr<UringRing> create(unsigned entries);

  ~UringRing();
  UringRing(const UringRing&) = delete;
  UringRing& operator=(const UringRing&) = delete;

  /// Register `count` fixed buffers; buffer i must stay mapped for the life
  /// of the ring. prep_*_fixed buf_index values refer to this table.
  bool register_buffers(const iovec* iovecs, unsigned count);
  bool buffers_registered() const { return buffers_registered_; }

  // SQE preparation. Each returns false when the SQ is full (callers size
  // batches <= sq_entries()); nothing reaches the kernel until
  // submit_and_wait. `offset` is a file offset (pass 0 for sockets).
  bool prep_read(int fd, void* buf, unsigned len, std::uint64_t offset,
                 std::uint64_t user_data);
  bool prep_write(int fd, const void* buf, unsigned len, std::uint64_t offset,
                  std::uint64_t user_data);
  bool prep_read_fixed(int fd, void* buf, unsigned len, std::uint64_t offset,
                       unsigned buf_index, std::uint64_t user_data);
  bool prep_write_fixed(int fd, const void* buf, unsigned len,
                        std::uint64_t offset, unsigned buf_index,
                        std::uint64_t user_data);
  bool prep_writev(int fd, const iovec* iovecs, unsigned count,
                   std::uint64_t user_data);

  // --- Multishot receive plane -------------------------------------------
  // One provided-buffer ring per UringRing (group id `bgid`): the owner
  // thread hands kernel-writable blocks to the ring with provide_buffer and
  // a single multishot RECV SQE then produces one completion per filled
  // buffer until the group runs dry (-ENOBUFS) or the kernel drops the
  // kCqeFlagMore bit, at which point the caller re-arms.

  /// Allocate + register a provided-buffer ring with `entries` slots (power
  /// of two). False when the kernel lacks IORING_REGISTER_PBUF_RING.
  bool setup_buf_ring(unsigned entries, unsigned short bgid);
  bool buf_ring_ready() const { return buf_ring_ != nullptr; }

  /// Hand one buffer to the kernel under id `bid`. ids come back to the
  /// caller via Completion::flags (kCqeFlagBuffer, flags >> kCqeBufferShift).
  void provide_buffer(void* addr, unsigned len, unsigned short bid);

  /// Arm a multishot RECV on `fd` drawing from the provided-buffer ring.
  bool prep_recv_multishot(int fd, std::uint64_t user_data);

  /// Arm a multishot ACCEPT on listening `fd`: one SQE yields one completion
  /// (res = accepted fd) per inbound connection.
  bool prep_accept_multishot(int fd, std::uint64_t user_data);

  /// Submit every prepped SQE and block until at least `wait_n` completions
  /// are reaped into `out` (cleared first). One io_uring_enter in the common
  /// case. Returns completions reaped, or -1 on a ring-level failure (the
  /// prepped operations are lost; callers fall back to syscalls).
  int submit_and_wait(unsigned wait_n, std::vector<Completion>& out);

  unsigned sq_entries() const { return sq_entries_; }
  /// io_uring_enter calls issued — the ring's contribution to
  /// io.syscalls_total. Readable from any thread.
  std::uint64_t enters() const {
    return enters_.load(std::memory_order_relaxed);
  }

 private:
  UringRing() = default;
  void reap(std::vector<Completion>& out);
  void* prep(int fd, std::uint8_t opcode, const void* addr, unsigned len,
             std::uint64_t offset, std::uint64_t user_data);

  int ring_fd_ = -1;
  unsigned sq_entries_ = 0;
  unsigned pending_ = 0;           // SQEs prepped since the last submit
  unsigned sq_tail_local_ = 0;     // our tail shadow, published on submit
  bool buffers_registered_ = false;
  std::atomic<std::uint64_t> enters_{0};

  // Provided-buffer ring (multishot receive). The entry array is a plain
  // anonymous mmap shared with the kernel; its tail lives inside entry 0
  // (kernel ABI) and is published with a release store by the owner thread.
  void* buf_ring_ = nullptr;
  std::size_t buf_ring_bytes_ = 0;
  unsigned buf_ring_entries_ = 0;
  unsigned buf_ring_tail_local_ = 0;
  unsigned short buf_ring_bgid_ = 0;

  // mmap regions (raw because their layout comes from io_uring_params).
  void* sq_ring_ = nullptr;
  std::size_t sq_ring_bytes_ = 0;
  void* cq_ring_ = nullptr;  // == sq_ring_ under IORING_FEAT_SINGLE_MMAP
  std::size_t cq_ring_bytes_ = 0;
  void* sqes_ = nullptr;
  std::size_t sqes_bytes_ = 0;

  // Ring pointers resolved from the params offsets.
  unsigned* sq_khead_ = nullptr;
  unsigned* sq_ktail_ = nullptr;
  unsigned* sq_kmask_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_khead_ = nullptr;
  unsigned* cq_ktail_ = nullptr;
  unsigned* cq_kmask_ = nullptr;
  void* cqes_ = nullptr;
};

}  // namespace automdt::net
