#include "net/frame.hpp"

#include <cstring>

#include "common/checksum.hpp"
#include "net/wire.hpp"

namespace automdt::net {

const char* to_string(FrameError error) {
  switch (error) {
    case FrameError::kNone: return "none";
    case FrameError::kNeedMoreData: return "need-more-data";
    case FrameError::kBadMagic: return "bad-magic";
    case FrameError::kBadVersion: return "bad-version";
    case FrameError::kOversized: return "oversized";
    case FrameError::kChecksumMismatch: return "checksum-mismatch";
    case FrameError::kTimeout: return "timeout";
    case FrameError::kClosed: return "closed";
    case FrameError::kTruncated: return "truncated";
  }
  return "?";
}

namespace {

/// The 4 little-endian session-id extension bytes, as both the wire encoding
/// and the checksum-chain prefix.
struct SessionExt {
  std::byte bytes[kFrameSessionExtBytes];

  explicit SessionExt(std::uint32_t id) {
    for (std::size_t i = 0; i < kFrameSessionExtBytes; ++i)
      bytes[i] = static_cast<std::byte>((id >> (8 * i)) & 0xFF);
  }

  std::uint64_t checksum_seed() const {
    return fnv1a(bytes, kFrameSessionExtBytes);
  }
};

std::uint32_t read_session_ext(const std::byte* ext) {
  std::uint32_t id = 0;
  for (std::size_t i = 0; i < kFrameSessionExtBytes; ++i)
    id |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(ext[i]))
          << (8 * i);
  return id;
}

}  // namespace

void encode_frame(const Frame& frame, std::vector<std::byte>& out) {
  const std::uint16_t flags =
      frame.session_id != 0 ? frame.flags | kFrameFlagSession : frame.flags;
  const bool session = (flags & kFrameFlagSession) != 0;
  const SessionExt ext(frame.session_id);
  out.clear();
  out.reserve(kFrameHeaderBytes + (session ? kFrameSessionExtBytes : 0) +
              frame.payload.size());
  wire::put_u32(out, kFrameMagic);
  wire::put_u16(out, kFrameVersion);
  wire::put_u16(out, static_cast<std::uint16_t>(frame.type) | flags);
  wire::put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  wire::put_u64(out, fnv1a(frame.payload,
                           session ? ext.checksum_seed() : kFnv1aOffsetBasis));
  if (session)
    out.insert(out.end(), ext.bytes, ext.bytes + kFrameSessionExtBytes);
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
}

std::vector<std::byte> encode_frame(const Frame& frame) {
  std::vector<std::byte> out;
  encode_frame(frame, out);
  return out;
}

namespace {

struct Header {
  std::uint32_t magic;
  std::uint16_t version;
  std::uint16_t type;
  std::uint32_t length;
  std::uint64_t checksum;
};

FrameError parse_header(const std::byte* data, std::uint32_t max_payload_bytes,
                        Header& h) {
  wire::Reader r(data, kFrameHeaderBytes);
  h.magic = r.u32();
  h.version = r.u16();
  h.type = r.u16();
  h.length = r.u32();
  h.checksum = r.u64();
  if (h.magic != kFrameMagic) return FrameError::kBadMagic;
  if (h.version != kFrameVersion) return FrameError::kBadVersion;
  if (h.length > max_payload_bytes) return FrameError::kOversized;
  return FrameError::kNone;
}

}  // namespace

DecodeResult decode_frame(const std::byte* data, std::size_t size, Frame& out,
                          std::uint32_t max_payload_bytes) {
  if (size < kFrameHeaderBytes) return {FrameError::kNeedMoreData, 0};
  Header h;
  if (const FrameError e = parse_header(data, max_payload_bytes, h);
      e != FrameError::kNone) {
    return {e, 0};
  }
  const auto flags = static_cast<std::uint16_t>(h.type & ~kFrameTypeMask);
  const bool session = (flags & kFrameFlagSession) != 0;
  const std::size_t header_bytes =
      kFrameHeaderBytes + (session ? kFrameSessionExtBytes : 0);
  if (size < header_bytes + h.length) return {FrameError::kNeedMoreData, 0};
  const std::byte* payload = data + header_bytes;
  std::uint64_t seed = kFnv1aOffsetBasis;
  std::uint32_t session_id = 0;
  if (session) {
    const std::byte* ext = data + kFrameHeaderBytes;
    session_id = read_session_ext(ext);
    seed = fnv1a(ext, kFrameSessionExtBytes);
  }
  if ((flags & kFrameFlagUnchecked) == 0 &&
      fnv1a(payload, h.length, seed) != h.checksum) {
    return {FrameError::kChecksumMismatch, 0};
  }
  out.type = static_cast<FrameType>(h.type & kFrameTypeMask);
  out.flags = flags;
  out.session_id = session_id;
  out.payload.assign(payload, payload + h.length);
  return {FrameError::kNone, header_bytes + h.length};
}

FrameError parse_frame_header(const std::byte* data, std::size_t size,
                              FrameHeaderView& out,
                              std::uint32_t max_payload_bytes) {
  if (size < kFrameHeaderBytes) return FrameError::kNeedMoreData;
  Header h;
  if (const FrameError e = parse_header(data, max_payload_bytes, h);
      e != FrameError::kNone) {
    return e;
  }
  out.type = static_cast<FrameType>(h.type & kFrameTypeMask);
  out.flags = static_cast<std::uint16_t>(h.type & ~kFrameTypeMask);
  out.length = h.length;
  out.checksum = h.checksum;
  out.session_id = 0;
  out.header_bytes = kFrameHeaderBytes;
  out.checksum_seed = kFnv1aOffsetBasis;
  if ((out.flags & kFrameFlagSession) != 0) {
    out.header_bytes = kFrameHeaderBytes + kFrameSessionExtBytes;
    if (size < out.header_bytes) return FrameError::kNeedMoreData;
    const std::byte* ext = data + kFrameHeaderBytes;
    out.session_id = read_session_ext(ext);
    out.checksum_seed = fnv1a(ext, kFrameSessionExtBytes);
  }
  return FrameError::kNone;
}

FrameError FrameReader::read(Frame& out, double timeout_s) {
  switch (socket_.read_exact(header_, kFrameHeaderBytes, timeout_s)) {
    case SocketStatus::kOk: break;
    case SocketStatus::kTimeout: return FrameError::kTimeout;
    case SocketStatus::kClosed: return FrameError::kClosed;
    case SocketStatus::kError: return FrameError::kTruncated;
  }
  Header h;
  if (const FrameError e = parse_header(header_, max_payload_bytes_, h);
      e != FrameError::kNone) {
    return e;
  }
  const auto flags = static_cast<std::uint16_t>(h.type & ~kFrameTypeMask);
  std::uint64_t seed = kFnv1aOffsetBasis;
  std::uint32_t session_id = 0;
  if ((flags & kFrameFlagSession) != 0) {
    std::byte* ext = header_ + kFrameHeaderBytes;
    switch (socket_.read_exact(ext, kFrameSessionExtBytes, timeout_s)) {
      case SocketStatus::kOk: break;
      case SocketStatus::kTimeout: return FrameError::kTimeout;
      case SocketStatus::kClosed: return FrameError::kTruncated;
      case SocketStatus::kError: return FrameError::kTruncated;
    }
    session_id = read_session_ext(ext);
    seed = fnv1a(ext, kFrameSessionExtBytes);
  }
  out.payload.resize(h.length);
  if (h.length > 0) {
    switch (socket_.read_exact(out.payload.data(), h.length, timeout_s)) {
      case SocketStatus::kOk: break;
      case SocketStatus::kTimeout: return FrameError::kTimeout;
      case SocketStatus::kClosed: return FrameError::kTruncated;
      case SocketStatus::kError: return FrameError::kTruncated;
    }
  }
  if ((flags & kFrameFlagUnchecked) == 0 &&
      fnv1a(out.payload, seed) != h.checksum)
    return FrameError::kChecksumMismatch;
  out.type = static_cast<FrameType>(h.type & kFrameTypeMask);
  out.flags = flags;
  out.session_id = session_id;
  return FrameError::kNone;
}

SocketStatus FrameWriter::write(FrameType type,
                                const std::vector<std::byte>& payload,
                                double timeout_s, std::uint16_t flags,
                                std::uint32_t session_id) {
  // Header and payload go out as two write_all calls so a large chunk
  // payload is never copied into the scratch buffer.
  if (session_id != 0) flags |= kFrameFlagSession;
  const bool session = (flags & kFrameFlagSession) != 0;
  const SessionExt ext(session_id);
  scratch_.clear();
  wire::put_u32(scratch_, kFrameMagic);
  wire::put_u16(scratch_, kFrameVersion);
  wire::put_u16(scratch_, static_cast<std::uint16_t>(type) | flags);
  wire::put_u32(scratch_, static_cast<std::uint32_t>(payload.size()));
  wire::put_u64(scratch_, fnv1a(payload, session ? ext.checksum_seed()
                                                 : kFnv1aOffsetBasis));
  if (session)
    scratch_.insert(scratch_.end(), ext.bytes,
                    ext.bytes + kFrameSessionExtBytes);
  const SocketStatus s =
      socket_.write_all(scratch_.data(), scratch_.size(), timeout_s);
  if (s != SocketStatus::kOk) return s;
  if (payload.empty()) return SocketStatus::kOk;
  return socket_.write_all(payload.data(), payload.size(), timeout_s);
}

SocketStatus FrameWriter::write(const Frame& frame, double timeout_s) {
  return write(frame.type, frame.payload, timeout_s, frame.flags,
               frame.session_id);
}

SocketStatus FrameWriter::write_scatter(FrameType type,
                                        const std::vector<std::byte>& head,
                                        const std::byte* body,
                                        std::size_t body_size,
                                        double timeout_s, std::uint16_t flags,
                                        std::uint32_t session_id) {
  if (session_id != 0) flags |= kFrameFlagSession;
  const bool session = (flags & kFrameFlagSession) != 0;
  const SessionExt ext(session_id);
  scratch_.clear();
  wire::put_u32(scratch_, kFrameMagic);
  wire::put_u16(scratch_, kFrameVersion);
  wire::put_u16(scratch_, static_cast<std::uint16_t>(type) | flags);
  wire::put_u32(scratch_, static_cast<std::uint32_t>(head.size() + body_size));
  wire::put_u64(scratch_,
                fnv1a(body, body_size,
                      fnv1a(head, session ? ext.checksum_seed()
                                          : kFnv1aOffsetBasis)));
  if (session)
    scratch_.insert(scratch_.end(), ext.bytes,
                    ext.bytes + kFrameSessionExtBytes);
  SocketStatus s =
      socket_.write_all(scratch_.data(), scratch_.size(), timeout_s);
  if (s != SocketStatus::kOk) return s;
  if (!head.empty()) {
    s = socket_.write_all(head.data(), head.size(), timeout_s);
    if (s != SocketStatus::kOk) return s;
  }
  if (body_size == 0) return SocketStatus::kOk;
  return socket_.write_all(body, body_size, timeout_s);
}

std::size_t FrameWriter::build_scatter_batch(FrameType type,
                                             const ScatterSegment* segments,
                                             std::size_t count,
                                             std::vector<iovec>& iov) {
  // All frame headers (plus any session extensions — the extension stays
  // contiguous with its header, so one iovec still covers both) are
  // serialized into scratch_ up front; reserve first so the iovec base
  // pointers into it stay valid.
  scratch_.clear();
  scratch_.reserve(count * (kFrameHeaderBytes + kFrameSessionExtBytes));
  iov.clear();
  iov.reserve(count * 3);
  std::size_t total = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const ScatterSegment& seg = segments[i];
    std::uint16_t flags = seg.flags;
    if (seg.session_id != 0) flags |= kFrameFlagSession;
    const bool session = (flags & kFrameFlagSession) != 0;
    const SessionExt ext(seg.session_id);
    const std::size_t header_bytes =
        kFrameHeaderBytes + (session ? kFrameSessionExtBytes : 0);
    const std::size_t header_at = scratch_.size();
    wire::put_u32(scratch_, kFrameMagic);
    wire::put_u16(scratch_, kFrameVersion);
    wire::put_u16(scratch_, static_cast<std::uint16_t>(type) | flags);
    wire::put_u32(scratch_,
                  static_cast<std::uint32_t>(seg.head_size + seg.body_size));
    wire::put_u64(scratch_,
                  fnv1a(seg.body, seg.body_size,
                        fnv1a(seg.head, seg.head_size,
                              session ? ext.checksum_seed()
                                      : kFnv1aOffsetBasis)));
    if (session)
      scratch_.insert(scratch_.end(), ext.bytes,
                      ext.bytes + kFrameSessionExtBytes);
    iov.push_back({const_cast<std::byte*>(scratch_.data() + header_at),
                   header_bytes});
    if (seg.head_size > 0)
      iov.push_back({const_cast<std::byte*>(seg.head), seg.head_size});
    if (seg.body_size > 0)
      iov.push_back({const_cast<std::byte*>(seg.body), seg.body_size});
    total += header_bytes + seg.head_size + seg.body_size;
  }
  return total;
}

SocketStatus FrameWriter::write_scatter_batch(FrameType type,
                                              const ScatterSegment* segments,
                                              std::size_t count,
                                              double timeout_s) {
  if (count == 0) return SocketStatus::kOk;
  build_scatter_batch(type, segments, count, iov_);
  return socket_.write_vec(iov_.data(), static_cast<int>(iov_.size()),
                           timeout_s);
}

SocketStatus FrameWriter::write_file(FrameType type,
                                     const std::vector<std::byte>& head,
                                     int file_fd, std::uint64_t file_offset,
                                     std::uint32_t file_size, double timeout_s,
                                     std::uint16_t flags,
                                     std::uint32_t session_id) {
  if (session_id != 0) flags |= kFrameFlagSession;
  scratch_.clear();
  wire::put_u32(scratch_, kFrameMagic);
  wire::put_u16(scratch_, kFrameVersion);
  wire::put_u16(scratch_, static_cast<std::uint16_t>(type) | flags |
                              kFrameFlagUnchecked);
  wire::put_u32(scratch_,
                static_cast<std::uint32_t>(head.size() + file_size));
  wire::put_u64(scratch_, 0);  // unchecked: payload bytes stay in the kernel
  if ((flags & kFrameFlagSession) != 0) {
    const SessionExt ext(session_id);
    scratch_.insert(scratch_.end(), ext.bytes,
                    ext.bytes + kFrameSessionExtBytes);
  }
  SocketStatus s =
      socket_.write_all(scratch_.data(), scratch_.size(), timeout_s);
  if (s != SocketStatus::kOk) return s;
  if (!head.empty()) {
    s = socket_.write_all(head.data(), head.size(), timeout_s);
    if (s != SocketStatus::kOk) return s;
  }
  if (file_size == 0) return SocketStatus::kOk;
  return socket_.send_file(file_fd, file_offset, file_size, timeout_s);
}

FrameError BufferedFrameReader::read(Frame& out, double timeout_s) {
  for (;;) {
    // Try to slice one frame out of what is already buffered.
    if (end_ > begin_) {
      const DecodeResult r =
          decode_frame(buffer_.data() + begin_, end_ - begin_, out,
                       max_payload_bytes_);
      if (r.error == FrameError::kNone) {
        begin_ += r.consumed;
        if (begin_ == end_) begin_ = end_ = 0;
        return FrameError::kNone;
      }
      if (r.error != FrameError::kNeedMoreData) return r.error;
    }
    // Compact, then grow the window by one recv.
    if (begin_ > 0) {
      std::copy(buffer_.begin() + static_cast<std::ptrdiff_t>(begin_),
                buffer_.begin() + static_cast<std::ptrdiff_t>(end_),
                buffer_.begin());
      end_ -= begin_;
      begin_ = 0;
    }
    // Make room for at least the frame we are mid-way through (header tells
    // us the payload length once we have 12 bytes; just ensure read_hint
    // extra space — decode_frame bounds the payload anyway).
    if (buffer_.size() < end_ + read_hint_bytes_)
      buffer_.resize(end_ + read_hint_bytes_);
    std::size_t got = 0;
    const SocketStatus s = socket_.read_some(
        buffer_.data() + end_, buffer_.size() - end_, timeout_s, &got);
    switch (s) {
      case SocketStatus::kOk:
        end_ += got;
        break;
      case SocketStatus::kTimeout:
        return FrameError::kTimeout;
      case SocketStatus::kClosed:
        // EOF between frames is an orderly end; EOF mid-frame is truncation.
        return end_ == begin_ ? FrameError::kClosed : FrameError::kTruncated;
      case SocketStatus::kError:
        return FrameError::kTruncated;
    }
  }
}

}  // namespace automdt::net
