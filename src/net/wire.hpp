// Little-endian byte packing shared by the frame codec and the message
// codecs (chunks on the data plane, RPC messages on the control plane).
//
// The wire format is explicitly little-endian regardless of host order, so
// two DTNs of different endianness interoperate. Doubles travel as the IEEE
// bit pattern of the value (bit_cast through u64).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace automdt::net::wire {

inline void put_u8(std::vector<std::byte>& out, std::uint8_t v) {
  out.push_back(static_cast<std::byte>(v));
}

inline void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v & 0xFF));
  out.push_back(static_cast<std::byte>((v >> 8) & 0xFF));
}

inline void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

inline void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

inline void put_f64(std::vector<std::byte>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Cursor-style reader over a byte span. Callers must bounds-check with
/// remaining() (the codecs validate total length up front).
class Reader {
 public:
  Reader(const std::byte* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - pos_; }

  std::uint8_t u8() { return static_cast<std::uint8_t>(data_[pos_++]); }

  std::uint16_t u16() {
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i)
      v |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(data_[pos_++]))
           << (8 * i);
    return v;
  }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_++]))
           << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_++]))
           << (8 * i);
    return v;
  }

  double f64() { return std::bit_cast<double>(u64()); }

  const std::byte* cursor() const { return data_ + pos_; }
  void skip(std::size_t n) { pos_ += n; }

 private:
  const std::byte* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace automdt::net::wire
