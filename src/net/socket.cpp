#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/sendfile.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace automdt::net {
namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point deadline_from(double timeout_s) {
  if (timeout_s <= 0.0) return Clock::time_point::max();
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(timeout_s));
}

/// poll() one fd for `events`, honouring an absolute deadline. Returns
/// kOk when ready, kTimeout, or kError. EINTR restarts with the remaining
/// time (the deadline is absolute, so retries cannot extend the wait).
/// `counter`, when given, counts each poll() issued (data-path accounting).
SocketStatus poll_until(int fd, short events, Clock::time_point deadline,
                        std::atomic<std::uint64_t>* counter = nullptr) {
  for (;;) {
    int timeout_ms = -1;
    if (deadline != Clock::time_point::max()) {
      const auto remaining = deadline - Clock::now();
      if (remaining <= Clock::duration::zero()) return SocketStatus::kTimeout;
      timeout_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(remaining)
              .count()) +
          1;  // round up so we never spin on a sub-ms remainder
    }
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (counter != nullptr) counter->fetch_add(1, std::memory_order_relaxed);
    if (rc > 0) return SocketStatus::kOk;
    if (rc == 0) return SocketStatus::kTimeout;
    if (errno == EINTR) continue;
    return SocketStatus::kError;
  }
}

/// poll_until for POLLOUT on a send path, accumulating the time spent parked
/// into `wait_ns`. Only reached after an EAGAIN (the socket buffer is full),
/// so the two clock reads ride on an already-slow path.
SocketStatus poll_out_timed(int fd, Clock::time_point deadline,
                            std::atomic<std::uint64_t>* counter,
                            std::atomic<std::uint64_t>* wait_ns) {
  const auto t0 = Clock::now();
  const SocketStatus status = poll_until(fd, POLLOUT, deadline, counter);
  wait_ns->fetch_add(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count(),
      std::memory_order_relaxed);
  return status;
}

bool set_non_blocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool parse_addr(const std::string& host, std::uint16_t port,
                sockaddr_in& out) {
  std::memset(&out, 0, sizeof(out));
  out.sin_family = AF_INET;
  out.sin_port = htons(port);
  return ::inet_pton(AF_INET, host.c_str(), &out.sin_addr) == 1;
}

}  // namespace

const char* to_string(SocketStatus status) {
  switch (status) {
    case SocketStatus::kOk: return "ok";
    case SocketStatus::kTimeout: return "timeout";
    case SocketStatus::kClosed: return "closed";
    case SocketStatus::kError: return "error";
  }
  return "?";
}

Socket::Socket(int fd) : fd_(fd) {
  if (fd_ >= 0) set_non_blocking(fd_);
}

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_),
      syscalls_(other.syscalls_.load(std::memory_order_relaxed)),
      send_wait_ns_(other.send_wait_ns_.load(std::memory_order_relaxed)) {
  other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    syscalls_.store(other.syscalls_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    send_wait_ns_.store(other.send_wait_ns_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    other.fd_ = -1;
  }
  return *this;
}

SocketStatus Socket::read_exact(void* data, std::size_t size,
                                double timeout_s) {
  if (fd_ < 0) return SocketStatus::kClosed;
  const auto deadline = deadline_from(timeout_s);
  auto* out = static_cast<std::byte*>(data);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::recv(fd_, out + done, size - done, 0);
    syscalls_.fetch_add(1, std::memory_order_relaxed);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      // Orderly EOF: clean between messages, an error mid-message.
      return done == 0 ? SocketStatus::kClosed : SocketStatus::kError;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const SocketStatus s = poll_until(fd_, POLLIN, deadline, &syscalls_);
      if (s != SocketStatus::kOk) return s;
      continue;
    }
    return SocketStatus::kError;
  }
  return SocketStatus::kOk;
}

SocketStatus Socket::read_some(void* data, std::size_t size, double timeout_s,
                               std::size_t* received) {
  *received = 0;
  if (fd_ < 0) return SocketStatus::kClosed;
  if (size == 0) return SocketStatus::kOk;
  const auto deadline = deadline_from(timeout_s);
  for (;;) {
    const ssize_t n = ::recv(fd_, data, size, 0);
    syscalls_.fetch_add(1, std::memory_order_relaxed);
    if (n > 0) {
      *received = static_cast<std::size_t>(n);
      return SocketStatus::kOk;
    }
    if (n == 0) return SocketStatus::kClosed;  // orderly EOF
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const SocketStatus s = poll_until(fd_, POLLIN, deadline, &syscalls_);
      if (s != SocketStatus::kOk) return s;
      continue;
    }
    return SocketStatus::kError;
  }
}

SocketStatus Socket::write_all(const void* data, std::size_t size,
                               double timeout_s) {
  if (fd_ < 0) return SocketStatus::kClosed;
  const auto deadline = deadline_from(timeout_s);
  const auto* in = static_cast<const std::byte*>(data);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::send(fd_, in + done, size - done, MSG_NOSIGNAL);
    syscalls_.fetch_add(1, std::memory_order_relaxed);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const SocketStatus s =
          poll_out_timed(fd_, deadline, &syscalls_, &send_wait_ns_);
      if (s != SocketStatus::kOk) return s;
      continue;
    }
    if (n < 0 && errno == EPIPE) return SocketStatus::kClosed;
    return SocketStatus::kError;
  }
  return SocketStatus::kOk;
}

SocketStatus Socket::write_vec(iovec* iov, int count, double timeout_s) {
  if (fd_ < 0) return SocketStatus::kClosed;
  const auto deadline = deadline_from(timeout_s);
  // Skip already-empty leading segments.
  while (count > 0 && iov->iov_len == 0) {
    ++iov;
    --count;
  }
  while (count > 0) {
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(count);
    const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    syscalls_.fetch_add(1, std::memory_order_relaxed);
    if (n > 0) {
      std::size_t done = static_cast<std::size_t>(n);
      while (count > 0 && done >= iov->iov_len) {
        done -= iov->iov_len;
        ++iov;
        --count;
      }
      if (count > 0 && done > 0) {
        iov->iov_base = static_cast<std::byte*>(iov->iov_base) + done;
        iov->iov_len -= done;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const SocketStatus s =
          poll_out_timed(fd_, deadline, &syscalls_, &send_wait_ns_);
      if (s != SocketStatus::kOk) return s;
      continue;
    }
    if (n < 0 && errno == EPIPE) return SocketStatus::kClosed;
    return SocketStatus::kError;
  }
  return SocketStatus::kOk;
}

SocketStatus Socket::send_file(int file_fd, std::uint64_t offset,
                               std::size_t size, double timeout_s) {
  if (fd_ < 0) return SocketStatus::kClosed;
  const auto deadline = deadline_from(timeout_s);
  auto off = static_cast<off_t>(offset);
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::sendfile(fd_, file_fd, &off, size - done);
    syscalls_.fetch_add(1, std::memory_order_relaxed);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return SocketStatus::kError;  // file shorter than declared
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const SocketStatus s =
          poll_out_timed(fd_, deadline, &syscalls_, &send_wait_ns_);
      if (s != SocketStatus::kOk) return s;
      continue;
    }
    if (errno == EPIPE) return SocketStatus::kClosed;
    return SocketStatus::kError;
  }
  return SocketStatus::kOk;
}

SocketStatus Socket::splice_to_file(int file_fd, std::uint64_t file_offset,
                                    std::size_t size, int pipe_rd, int pipe_wr,
                                    double timeout_s, bool* unsupported) {
  *unsupported = false;
  if (fd_ < 0) return SocketStatus::kClosed;
  const auto deadline = deadline_from(timeout_s);
  std::size_t done = 0;
  while (done < size) {
    // Socket → pipe. Cap each slice at a default pipe capacity; the kernel
    // clamps to the actual free space, the drain below always empties it.
    ssize_t moved = ::splice(fd_, nullptr, pipe_wr, nullptr,
                             std::min<std::size_t>(size - done, 64 * 1024),
                             SPLICE_F_MOVE);
    syscalls_.fetch_add(1, std::memory_order_relaxed);
    if (moved < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        const SocketStatus s = poll_until(fd_, POLLIN, deadline, &syscalls_);
        if (s != SocketStatus::kOk) return s;
        continue;
      }
      if (done == 0 && (errno == EINVAL || errno == ENOSYS)) {
        *unsupported = true;  // nothing consumed: caller reverts to recv
      }
      return SocketStatus::kError;
    }
    if (moved == 0) {
      // Peer closed mid-payload: bytes already spliced are on disk, but the
      // frame is truncated — an error either way.
      return SocketStatus::kError;
    }
    // Pipe → file, fully drained so the pipe is empty for the next slice.
    std::size_t in_pipe = static_cast<std::size_t>(moved);
    auto off = static_cast<off_t>(file_offset + done);
    while (in_pipe > 0) {
      const ssize_t out = ::splice(pipe_rd, nullptr, file_fd, &off, in_pipe,
                                   SPLICE_F_MOVE);
      syscalls_.fetch_add(1, std::memory_order_relaxed);
      if (out > 0) {
        in_pipe -= static_cast<std::size_t>(out);
        continue;
      }
      if (out < 0 && errno == EINTR) continue;
      // The sink refuses splice (e.g. an O_APPEND or non-seekable fd):
      // finish this slice through userspace so the pipe never strands data.
      std::byte scratch[16 * 1024];
      while (in_pipe > 0) {
        const ssize_t got =
            ::read(pipe_rd, scratch,
                   std::min(in_pipe, sizeof(scratch)));
        syscalls_.fetch_add(1, std::memory_order_relaxed);
        if (got <= 0) {
          if (got < 0 && errno == EINTR) continue;
          return SocketStatus::kError;
        }
        std::size_t written = 0;
        while (written < static_cast<std::size_t>(got)) {
          const ssize_t w = ::pwrite(file_fd, scratch + written,
                                     static_cast<std::size_t>(got) - written,
                                     off);
          syscalls_.fetch_add(1, std::memory_order_relaxed);
          if (w < 0) {
            if (errno == EINTR) continue;
            return SocketStatus::kError;
          }
          written += static_cast<std::size_t>(w);
          off += w;
        }
        in_pipe -= static_cast<std::size_t>(got);
      }
    }
    done += static_cast<std::size_t>(moved);
  }
  return SocketStatus::kOk;
}

void Socket::set_no_delay() {
  if (fd_ < 0) return;
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void Socket::configure(const SocketOptions& options) {
  if (fd_ < 0) return;
  // Set explicitly both ways: accept/connect enable TCP_NODELAY by default,
  // so no_delay = false must be able to undo that.
  int flag = options.no_delay ? 1 : 0;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &flag, sizeof(flag));
  if (options.send_buffer_bytes > 0) {
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &options.send_buffer_bytes,
                 sizeof(options.send_buffer_bytes));
  }
  if (options.recv_buffer_bytes > 0) {
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &options.recv_buffer_bytes,
                 sizeof(options.recv_buffer_bytes));
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::make_pair(Socket& a, Socket& b) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return false;
  a = Socket(fds[0]);
  b = Socket(fds[1]);
  return true;
}

std::optional<Listener> Listener::open(const std::string& host,
                                       std::uint16_t port, int backlog) {
  sockaddr_in addr;
  if (!parse_addr(host, port, addr)) return std::nullopt;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return std::nullopt;
  Socket sock(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, backlog) != 0) {
    return std::nullopt;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0)
    return std::nullopt;
  Listener listener;
  listener.socket_ = std::move(sock);
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

std::optional<Socket> Listener::accept(double timeout_s) {
  if (!socket_.valid()) return std::nullopt;
  const auto deadline = deadline_from(timeout_s);
  for (;;) {
    const int fd = ::accept4(socket_.fd(), nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) {
      Socket s(fd);
      s.set_no_delay();
      return s;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (poll_until(socket_.fd(), POLLIN, deadline) != SocketStatus::kOk)
        return std::nullopt;
      continue;
    }
    return std::nullopt;  // shutdown() lands here (EINVAL) — treated as closed
  }
}

void Listener::shutdown() { socket_.shutdown_both(); }

void Listener::close() { socket_.close(); }

std::optional<Socket> Connector::connect(const std::string& host,
                                         std::uint16_t port) {
  sockaddr_in addr;
  attempts_made_ = 0;
  if (!parse_addr(host, port, addr)) {
    last_status_ = SocketStatus::kError;
    return std::nullopt;
  }
  double backoff = config_.initial_backoff_s;
  const int attempts = std::max(1, config_.max_attempts);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    ++attempts_made_;
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      last_status_ = SocketStatus::kError;
      return std::nullopt;
    }
    Socket sock(fd);  // constructor flips the fd non-blocking
    const int rc =
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    bool ok = rc == 0;
    if (!ok && errno == EINPROGRESS) {
      // Non-blocking handshake: wait for writability, then check SO_ERROR.
      const auto deadline = deadline_from(config_.connect_timeout_s);
      const SocketStatus s = poll_until(fd, POLLOUT, deadline);
      if (s == SocketStatus::kOk) {
        int err = 0;
        socklen_t len = sizeof(err);
        ok = ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) == 0 &&
             err == 0;
        last_status_ = ok ? SocketStatus::kOk : SocketStatus::kError;
      } else {
        last_status_ = s;  // kTimeout: SYN unanswered (e.g. full backlog)
      }
    } else {
      last_status_ = ok ? SocketStatus::kOk : SocketStatus::kError;
    }
    if (ok) {
      sock.set_no_delay();
      return sock;
    }
    sock.close();
    if (attempt + 1 < attempts) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff = std::min(backoff * config_.backoff_multiplier,
                         config_.max_backoff_s);
    }
  }
  return std::nullopt;
}

}  // namespace automdt::net
