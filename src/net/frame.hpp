// Length-prefixed binary framing shared by the data and control planes.
//
// Wire layout (all little-endian), 20-byte header followed by the payload:
//
//   offset  size  field
//        0     4  magic      "AMDT" on the wire (0x54444D41 as LE u32)
//        4     2  version    kFrameVersion
//        6     2  type       FrameType (low 13 bits) | flag bits (top three)
//        8     4  length     payload bytes (bounded by max_payload_bytes)
//       12     8  checksum   FNV-1a of the payload bytes (0 if unchecked)
//      [20     4  session]   u32 session id, only under kFrameFlagSession;
//                            the checksum then covers these 4 bytes followed
//                            by the payload (seed chaining)
//
// The checksum is the same FNV-1a the engine uses for chunk payloads
// (common/checksum.hpp), so a frame that decodes cleanly has also proven its
// payload intact — the writer-side chunk verification then re-proves the
// end-to-end path including serialization itself.
//
// decode_frame() works on in-memory buffers (unit tests, future io_uring
// batching); FrameReader/FrameWriter bind the codec to a Socket with the
// EINTR-safe full-read/write loops.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/checksum.hpp"
#include "net/socket.hpp"

namespace automdt::net {

inline constexpr std::uint32_t kFrameMagic = 0x54444D41u;  // "AMDT" in LE
inline constexpr std::uint16_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 20;

// The header's u16 type field doubles as a small flag word: the low 13 bits
// are the FrameType; the top bit marks a traced frame (its payload carries
// the optional trace-stamp extension — see stream_pool.hpp), bit 14 marks
// an unchecked frame (checksum field 0, verification skipped — the sendfile
// fast path, whose payload bytes never transit sender user space, cannot
// FNV them), and bit 13 marks a session-addressed frame: the header grows a
// 4-byte little-endian session id between the fixed 20 bytes and the
// payload, and the checksum covers those 4 id bytes followed by the payload
// (FNV-1a seed chaining), so a corrupted id fails validation like corrupted
// data. A frame with no flags set encodes byte-identically to the pre-flag
// wire format, so default traffic ⇒ unchanged bytes on the wire, and old
// decoders reject flagged frames as an unknown type instead of mis-parsing
// the payload.
inline constexpr std::uint16_t kFrameTypeMask = 0x1FFF;
inline constexpr std::uint16_t kFrameFlagTraced = 0x8000;
inline constexpr std::uint16_t kFrameFlagUnchecked = 0x4000;
inline constexpr std::uint16_t kFrameFlagSession = 0x2000;
/// Bytes the header grows by under kFrameFlagSession (the u32 session id).
inline constexpr std::size_t kFrameSessionExtBytes = 4;

/// Default payload bound: one control message or one data chunk; far below
/// this in practice, but large enough for any sane chunk_bytes setting.
inline constexpr std::uint32_t kDefaultMaxPayloadBytes = 64u * 1024 * 1024;

enum class FrameType : std::uint16_t {
  kChunk = 1,         // data plane: one serialized transfer chunk
  kStreamHello = 2,   // data plane: first frame on a stream, payload = id
  kStreamPark = 3,    // data plane: stream idles (n_n lowered)
  kStreamResume = 4,  // data plane: stream active again (n_n raised)
  kRpc = 5,           // control plane: one serialized RpcMessage
  kPing = 6,          // liveness / latency probes
  kPong = 7,
  // Serve-plane session control (src/serve/): sessions multiplex over one
  // connection, addressed by the kFrameFlagSession header id on data frames.
  kSessionOpen = 8,    // client → server: admit a new session (payload =
                       // token/tenant/size — serve/session.hpp codecs)
  kSessionAccept = 9,  // server → client: admitted; payload carries the id
  kSessionReject = 10, // server → client: refused; payload carries the reason
  kSessionClose = 11,  // client → server: all chunks sent (id in header)
  kSessionClosed = 12, // server → client: drained + final per-session stats
};

struct Frame {
  FrameType type = FrameType::kPing;
  std::vector<std::byte> payload;
  std::uint16_t flags = 0;  // kFrameFlag* bits, 0 for ordinary frames
  /// Serve-plane session id. Nonzero ids (or kFrameFlagSession in `flags`)
  /// encode the 4-byte header extension; 0 without the flag keeps the legacy
  /// byte-identical format. Decoders fill it from the extension (0 if none).
  std::uint32_t session_id = 0;
};

enum class FrameError {
  kNone = 0,
  kNeedMoreData,      // buffer ends mid-header or mid-payload (streaming)
  kBadMagic,
  kBadVersion,
  kOversized,         // declared length exceeds the configured bound
  kChecksumMismatch,
  kTimeout,           // socket deadline expired
  kClosed,            // orderly EOF between frames / shutdown
  kTruncated,         // EOF or I/O error mid-frame
};

const char* to_string(FrameError error);

/// Serialize header + payload into `out` (cleared first, reused capacity).
void encode_frame(const Frame& frame, std::vector<std::byte>& out);
std::vector<std::byte> encode_frame(const Frame& frame);

struct DecodeResult {
  FrameError error = FrameError::kNone;
  std::size_t consumed = 0;  // bytes eaten on success; 0 otherwise
};

/// Decode one frame from an in-memory buffer. On success fills `out`
/// (payload buffer reused) and reports bytes consumed.
DecodeResult decode_frame(const std::byte* data, std::size_t size, Frame& out,
                          std::uint32_t max_payload_bytes =
                              kDefaultMaxPayloadBytes);

/// Parsed-and-validated view of one frame header (20 bytes, or 24 with the
/// session extension).
struct FrameHeaderView {
  FrameType type = FrameType::kPing;
  std::uint16_t flags = 0;
  std::uint32_t length = 0;    // payload bytes following the header
  std::uint64_t checksum = 0;  // 0 and unverified under kFrameFlagUnchecked
  std::uint32_t session_id = 0;     // from the extension; 0 if none
  std::size_t header_bytes = kFrameHeaderBytes;  // 20, or 24 with session id
  /// Seed for verifying `checksum` against the payload: the FNV-1a basis
  /// normally, or the hash of the 4 session-id bytes under kFrameFlagSession
  /// (the checksum chain covers id ++ payload). Callers verify with
  /// fnv1a(payload, length, checksum_seed).
  std::uint64_t checksum_seed = kFnv1aOffsetBasis;
};

/// Validate just the header without touching the payload — the in-place
/// (zero-copy) decode seam: callers verify the checksum against the payload
/// bytes where they already sit and slice them out as leases. Returns kNone,
/// kNeedMoreData (size < the full header incl. any session extension), or a
/// validation error.
FrameError parse_frame_header(const std::byte* data, std::size_t size,
                              FrameHeaderView& out,
                              std::uint32_t max_payload_bytes =
                                  kDefaultMaxPayloadBytes);

/// Reads one frame at a time from a socket, reusing its scratch buffers.
/// Not thread-safe; one reader per socket.
class FrameReader {
 public:
  explicit FrameReader(Socket& socket,
                       std::uint32_t max_payload_bytes = kDefaultMaxPayloadBytes)
      : socket_(socket), max_payload_bytes_(max_payload_bytes) {}

  /// Blocks up to `timeout_s` (<= 0: forever) for one full frame. The frame's
  /// payload vector is reused across calls — move it out to keep it.
  FrameError read(Frame& out, double timeout_s);

 private:
  Socket& socket_;
  std::uint32_t max_payload_bytes_;
  std::byte header_[kFrameHeaderBytes + kFrameSessionExtBytes];
};

/// One frame of a coalesced batch: logical payload = head ++ body, neither
/// copied (head = chunk metadata slice, body = the payload vector moved
/// through the pipeline).
struct ScatterSegment {
  const std::byte* head = nullptr;
  std::size_t head_size = 0;
  const std::byte* body = nullptr;
  std::size_t body_size = 0;
  std::uint16_t flags = 0;  // per-frame kFrameFlag* bits (traced chunks)
  /// Nonzero stamps the frame with the session header extension (the flag
  /// bit is added automatically); 0 keeps the legacy layout.
  std::uint32_t session_id = 0;
};

/// Writes frames to a socket; serializes into a reused scratch buffer. Not
/// thread-safe; callers that share a socket must hold their own lock.
class FrameWriter {
 public:
  explicit FrameWriter(Socket& socket) : socket_(socket) {}

  SocketStatus write(const Frame& frame, double timeout_s);
  SocketStatus write(FrameType type, const std::vector<std::byte>& payload,
                     double timeout_s, std::uint16_t flags = 0,
                     std::uint32_t session_id = 0);

  /// Write one frame whose logical payload is `head` followed by `body`,
  /// without concatenating them (the chunk hot path: head = chunk metadata,
  /// body = the payload vector moved through the pipeline). The frame
  /// checksum covers both parts via FNV-1a seed chaining.
  SocketStatus write_scatter(FrameType type,
                             const std::vector<std::byte>& head,
                             const std::byte* body, std::size_t body_size,
                             double timeout_s, std::uint16_t flags = 0,
                             std::uint32_t session_id = 0);

  /// Coalesced hot path: emit `count` frames of `type` as one gathered
  /// write (a single sendmsg in the common case), so a batch of staged
  /// chunks costs one syscall instead of 2–3 each. Wire bytes are identical
  /// to `count` sequential write_scatter calls — the receiver needs no
  /// batching awareness. Caller bounds the batch (engine: max_coalesced
  /// bytes); 3 iovecs per frame must stay under IOV_MAX = 1024.
  SocketStatus write_scatter_batch(FrameType type,
                                   const ScatterSegment* segments,
                                   std::size_t count, double timeout_s);

  /// Build the gathered-iovec form of write_scatter_batch without writing:
  /// serializes every frame header into the reused scratch buffer and fills
  /// `iov` (cleared first) with the up-to-3-iovecs-per-frame layout. The
  /// bytes described are exactly what write_scatter_batch would send — this
  /// is the seam the io_uring sender submits through (one WRITEV SQE over
  /// the returned vector). The iovecs stay valid until the next call.
  std::size_t build_scatter_batch(FrameType type,
                                  const ScatterSegment* segments,
                                  std::size_t count, std::vector<iovec>& iov);

  /// Emit one frame whose payload is `head` followed by `file_size` bytes
  /// sendfile(2)'d straight out of `file_fd` at `file_offset` — the kernel-
  /// to-kernel file→socket fast path. The payload never transits user space,
  /// so the frame carries kFrameFlagUnchecked (checksum 0) on top of `flags`.
  SocketStatus write_file(FrameType type, const std::vector<std::byte>& head,
                          int file_fd, std::uint64_t file_offset,
                          std::uint32_t file_size, double timeout_s,
                          std::uint16_t flags = 0,
                          std::uint32_t session_id = 0);

 private:
  Socket& socket_;
  std::vector<std::byte> scratch_;
  std::vector<iovec> iov_;
};

/// Batch-decoding frame reader: pulls as many bytes as one recv yields into
/// an internal buffer and slices back-to-back frames out of it without
/// further syscalls. With a coalescing sender (write_scatter_batch) the
/// receive side drops from 2 syscalls per frame to ~2 per batch. Not
/// thread-safe; one reader per socket.
class BufferedFrameReader {
 public:
  explicit BufferedFrameReader(
      Socket& socket, std::uint32_t max_payload_bytes = kDefaultMaxPayloadBytes,
      std::size_t read_hint_bytes = 256 * 1024)
      : socket_(socket),
        max_payload_bytes_(max_payload_bytes),
        read_hint_bytes_(read_hint_bytes) {}

  /// Blocks up to `timeout_s` (<= 0: forever) for one full frame. The
  /// frame's payload vector is reused across calls — move it out to keep it.
  FrameError read(Frame& out, double timeout_s);

  /// Bytes sitting decoded-but-unconsumed in the buffer (tests/stats).
  std::size_t buffered_bytes() const { return end_ - begin_; }

 private:
  Socket& socket_;
  std::uint32_t max_payload_bytes_;
  std::size_t read_hint_bytes_;
  std::vector<std::byte> buffer_;
  std::size_t begin_ = 0;
  std::size_t end_ = 0;
};

}  // namespace automdt::net
