// TCP control channel: the transfer layer's RPC message set over a socket.
//
// Implements transfer::RpcEndpoint (the same interface the in-process
// channel exposes), so DtnPair runs its sender and receiver agents on the
// two ends of a loopback socket pair with no other change. Each endpoint
// owns one connected socket and a background reader thread that decodes
// kRpc frames into an in-memory delivery queue.
//
// `delivery_delay_s` holds received messages back for a fixed interval
// before receive()/try_receive() surface them — loopback RTT is ~10 µs, so
// without it a laptop-scale run would never exhibit the control-plane
// staleness a WAN deployment has (paper §IV-D.1). The delay emulates one-way
// WAN latency on top of the real socket path, keeping the in-process and TCP
// backends semantically interchangeable.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/socket.hpp"
#include "transfer/rpc_messages.hpp"

namespace automdt::net {

/// Serialize one control message as a kRpc frame payload.
void encode_rpc_message(const transfer::RpcMessage& message,
                        std::vector<std::byte>& out);

/// nullopt on malformed input (unknown tag, short buffer).
std::optional<transfer::RpcMessage> decode_rpc_message(const std::byte* data,
                                                       std::size_t size);

struct TcpTransportConfig {
  double delivery_delay_s = 0.0;  // emulated one-way WAN latency
  double io_timeout_s = 10.0;     // per-message socket write deadline
  std::uint32_t max_payload_bytes = 1u << 20;
};

class TcpTransport final : public transfer::RpcEndpoint {
 public:
  /// Client side: connect to a listening control port.
  static std::unique_ptr<TcpTransport> connect(
      const std::string& host, std::uint16_t port,
      const ConnectorConfig& connector = {},
      const TcpTransportConfig& config = {});

  /// Server side: wrap an accepted control connection.
  static std::unique_ptr<TcpTransport> adopt(
      Socket socket, const TcpTransportConfig& config = {});

  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  void send(transfer::RpcMessage message) override;
  std::optional<transfer::RpcMessage> receive() override;
  std::optional<transfer::RpcMessage> try_receive() override;
  void close() override;

  bool connected() const { return !closed_.load(); }
  std::uint64_t decode_errors() const { return decode_errors_.load(); }

 private:
  TcpTransport(Socket socket, const TcpTransportConfig& config);

  void reader_loop();

  using Clock = std::chrono::steady_clock;
  struct Entry {
    Clock::time_point deliver_at;
    transfer::RpcMessage message;
  };

  TcpTransportConfig config_;
  Socket socket_;

  std::mutex write_mutex_;
  FrameWriter writer_;
  std::vector<std::byte> encode_scratch_;

  std::mutex inbox_mutex_;
  std::condition_variable inbox_cv_;
  std::deque<Entry> inbox_;
  bool inbox_closed_ = false;

  std::atomic<bool> closed_{false};
  std::atomic<std::uint64_t> decode_errors_{0};
  std::thread reader_;
};

}  // namespace automdt::net
