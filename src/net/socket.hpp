// RAII POSIX socket wrappers for the TCP transport subsystem.
//
// Three small classes cover everything the data and control planes need:
//
//   Socket    — owns one fd; EINTR-safe full-read/full-write loops with
//               poll-based deadlines (sockets stay non-blocking throughout,
//               so a slow peer can never wedge a worker past its timeout).
//   Listener  — bind/listen on host:port (port 0 = kernel-assigned) with
//               timeout-bounded accept.
//   Connector — non-blocking connect with a handshake timeout, retried with
//               exponential backoff (paper §IV-F: stream setup is part of the
//               dynamics the concurrency knob exploits).
//
// Threading contract: one thread owns a Socket's I/O at a time, but any
// thread may call shutdown_both() to wake a blocked reader/writer — that is
// the engine's teardown path (shutdown() from the stopper, close() by the
// owner). No exceptions on I/O paths; every operation reports a SocketStatus.
#pragma once

#include <sys/uio.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace automdt::net {

enum class SocketStatus {
  kOk = 0,
  kTimeout,  // deadline expired before the full operation completed
  kClosed,   // orderly peer shutdown (EOF) or local shutdown
  kError,    // errno-level failure (connection reset, refused, ...)
};

const char* to_string(SocketStatus status);

/// Per-connection TCP tuning applied to freshly connected/accepted sockets
/// (Socket::configure). Zero buffer sizes keep the kernel defaults.
struct SocketOptions {
  bool no_delay = true;       // disable Nagle (TCP_NODELAY)
  int send_buffer_bytes = 0;  // SO_SNDBUF; 0 = kernel default
  int recv_buffer_bytes = 0;  // SO_RCVBUF; 0 = kernel default
};

/// Owning wrapper around one non-blocking socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd);
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Read exactly `size` bytes. `timeout_s` <= 0 waits forever. Returns
  /// kClosed on EOF before the first byte, kError on EOF mid-message.
  SocketStatus read_exact(void* data, std::size_t size, double timeout_s);

  /// Read *up to* `size` bytes: blocks until at least one byte arrives (or
  /// deadline / EOF), then returns whatever a single recv produced in
  /// `*received`. The frame-coalescing receive path uses this to pull many
  /// back-to-back frames out of the kernel in one syscall.
  SocketStatus read_some(void* data, std::size_t size, double timeout_s,
                         std::size_t* received);

  /// Write all `size` bytes (handles partial writes / EAGAIN / EINTR).
  SocketStatus write_all(const void* data, std::size_t size, double timeout_s);

  /// Gathered write: send every byte of `iov[0..count)` (sendmsg), handling
  /// partial writes by advancing the vector in place. `iov` is clobbered.
  /// One syscall per coalesced batch of frames in the common case.
  SocketStatus write_vec(iovec* iov, int count, double timeout_s);

  /// sendfile(2) the byte range [offset, offset+size) of `file_fd` into this
  /// socket — the file→socket fast path where payload bytes never transit
  /// user space. Handles partial sends / EAGAIN like write_all.
  SocketStatus send_file(int file_fd, std::uint64_t offset, std::size_t size,
                         double timeout_s);

  /// splice(2) the next `size` inbound socket bytes into `file_fd` at
  /// `file_offset` (pwrite semantics) through the caller's pipe — the
  /// socket→file twin of send_file, payload never transits user space. On
  /// kernels/filesystems that refuse the first socket→pipe splice before any
  /// byte moved, sets *unsupported and returns kError so the caller can fall
  /// back to recv with nothing consumed; once bytes are in the pipe, a
  /// pipe→file refusal is completed internally via read+pwrite so no data is
  /// ever stranded.
  SocketStatus splice_to_file(int file_fd, std::uint64_t file_offset,
                              std::size_t size, int pipe_rd, int pipe_wr,
                              double timeout_s, bool* unsupported);

  /// Disable Nagle; harmless to call on non-TCP sockets.
  void set_no_delay();

  /// Apply TCP_NODELAY / SO_SNDBUF / SO_RCVBUF from `options`.
  void configure(const SocketOptions& options);

  /// Wake any thread blocked in read/write on this socket (thread-safe; the
  /// fd stays owned until close()/destruction).
  void shutdown_both();

  void close();

  /// Connected AF_UNIX pair for tests and in-process loopback-free plumbing.
  static bool make_pair(Socket& a, Socket& b);

  /// Data-path syscalls this socket has issued (recv/send/sendmsg/sendfile
  /// plus their readiness polls) — the denominator behind the engine's
  /// io.syscalls_total counter. Relaxed; readable from any thread.
  std::uint64_t syscalls() const {
    return syscalls_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds send paths (write_all/write_vec/send_file) spent parked in
  /// POLLOUT waiting for the kernel send buffer to drain — the socket-level
  /// "blocked downstream" signal behind the stage clocks. Only the EAGAIN
  /// slow path is timed, so an unsaturated socket never reads the clock.
  std::uint64_t send_wait_ns() const {
    return send_wait_ns_.load(std::memory_order_relaxed);
  }

 private:
  int fd_ = -1;
  mutable std::atomic<std::uint64_t> syscalls_{0};
  mutable std::atomic<std::uint64_t> send_wait_ns_{0};
};

/// Listening TCP socket. open() binds immediately so port() is known even
/// with an ephemeral (0) port request.
class Listener {
 public:
  Listener() = default;

  /// Bind + listen on host:port. Returns nullopt on failure (port in use,
  /// bad address, ...). `port` 0 picks an ephemeral port; see port().
  static std::optional<Listener> open(const std::string& host,
                                      std::uint16_t port, int backlog = 16);

  bool valid() const { return socket_.valid(); }
  std::uint16_t port() const { return port_; }
  /// Listening fd, for event-loop integration (epoll on the serve plane).
  int fd() const { return socket_.fd(); }

  /// Accept one connection. `timeout_s` <= 0 waits forever. nullopt on
  /// timeout or after close()/shutdown.
  std::optional<Socket> accept(double timeout_s);

  /// Wake a blocked accept() (thread-safe).
  void shutdown();
  void close();

 private:
  Socket socket_;
  std::uint16_t port_ = 0;
};

struct ConnectorConfig {
  double connect_timeout_s = 2.0;   // per-attempt handshake deadline
  int max_attempts = 4;             // total attempts (1 = no retry)
  double initial_backoff_s = 0.05;  // sleep after the first failure
  double backoff_multiplier = 2.0;
  double max_backoff_s = 1.0;
};

/// Retry-with-exponential-backoff TCP connector.
class Connector {
 public:
  explicit Connector(ConnectorConfig config = {}) : config_(config) {}

  /// nullopt once every attempt failed. Thread-compatible, not thread-safe.
  std::optional<Socket> connect(const std::string& host, std::uint16_t port);

  int attempts_made() const { return attempts_made_; }
  SocketStatus last_status() const { return last_status_; }

 private:
  ConnectorConfig config_;
  int attempts_made_ = 0;
  SocketStatus last_status_ = SocketStatus::kOk;
};

}  // namespace automdt::net
