// Multi-stream TCP data plane for the transfer engine.
//
// Sender side (StreamPool): each network worker owns one TCP stream to the
// receiver, identified by its worker id. Streams connect lazily on first
// send (with retry + exponential backoff) and announce themselves with a
// StreamHello frame. set_active(n) mirrors the engine's live-tunable worker
// gating: streams >= n send a StreamPark frame and idle; raising n sends
// StreamResume on already-connected streams (and newly active workers simply
// connect on their next chunk). The TCP connections themselves are kept open
// across park/resume — exactly like the engine's parked worker threads — so
// retuning n_n never pays a fresh three-way handshake.
//
// Receiver side (StreamAcceptor): accepts data connections, runs one reader
// thread per stream, validates every frame (magic/version/length/FNV-1a) and
// hands decoded chunks to a callback. Exposes opened/active/parked stream
// counts so the far side of a set_concurrency() change is observable — the
// acceptance signal for live concurrency tuning over a real network path.
//
// Two hot-path variants ride on the same wire format (DESIGN.md §12):
//   io_uring — with use_uring, senders submit each coalesced batch as one
//     WRITEV SQE (one io_uring_enter) and receivers read through READ SQEs
//     into registered arena buffers; both degrade silently to sendmsg/recv.
//   zero-copy receive — with lease_pool, frames land in arena blocks and
//     chunk payloads are carved out as BufferLease subspans of the very
//     bytes recv wrote: no per-chunk payload copy on the receive side.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/buffer_pool.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "net/uring.hpp"

namespace automdt::net {

/// Transport-level view of one transfer chunk (mirrors transfer::Chunk field
/// for field; defined here so the net layer does not depend on the engine).
struct WireChunk {
  std::uint64_t file_id = 0;
  std::uint64_t offset = 0;
  std::uint32_t size = 0;
  std::uint64_t checksum = 0;
  /// Serve-plane session this chunk belongs to. Frame-level, not part of the
  /// chunk encoding: senders stamp it via the kFrameFlagSession header
  /// extension and receivers fill it back from the frame. 0 = legacy
  /// single-session traffic (byte-identical wire format).
  std::uint32_t session_id = 0;
  // Distributed-tracing stamps (sender steady-clock ns; 0 = not traced).
  // Carried on the wire only when the chunk's frame has kFrameFlagTraced set
  // — i.e. for the sampled 1-in-N minority when --wire-stamp is on — so the
  // untraced wire format stays byte-identical.
  std::uint64_t trace_origin_ns = 0;  // reader stage stamped the chunk
  std::uint64_t trace_send_ns = 0;    // network stage handed it to the socket
  std::vector<std::byte> payload;  // may be shorter than size (header-only)
  // Zero-copy alternative to `payload`: a refcounted view of the bytes where
  // they already sit (the receive block the frame landed in, or the reader's
  // arena block on the send side). When valid it IS the payload and the
  // vector stays empty — consumers go through payload_data()/payload_size()
  // so both representations look alike.
  BufferLease lease;
  // The receiver already spliced the payload to its file sink: `size` bytes
  // sit on disk at `offset`, payload/lease stay empty, and the downstream
  // writer must not write (payload_size() == 0 naturally no-ops there).
  bool persisted = false;

  const std::byte* payload_data() const {
    return lease.valid() ? lease.data() : payload.data();
  }
  std::size_t payload_size() const {
    return lease.valid() ? lease.size() : payload.size();
  }
};

/// Fixed part of a serialized chunk: file_id + offset + size + checksum.
inline constexpr std::size_t kWireChunkHeaderBytes = 8 + 8 + 4 + 8;
/// Trace-stamp extension appended to the fixed header on traced frames.
inline constexpr std::size_t kWireChunkTraceBytes = 8 + 8;
inline constexpr std::size_t kWireChunkTracedHeaderBytes =
    kWireChunkHeaderBytes + kWireChunkTraceBytes;

/// Serialize into `out` (cleared first; capacity reused). With `traced` the
/// header grows by the two trace stamps; the matching frame must then carry
/// kFrameFlagTraced so the decoder knows to expect them.
void encode_wire_chunk(const WireChunk& chunk, std::vector<std::byte>& out,
                       bool traced = false);

/// Decode from a frame payload. Returns false on malformed input. `traced`
/// comes from the frame's kFrameFlagTraced bit. The chunk's payload vector
/// is filled by copy so callers can pool buffers.
bool decode_wire_chunk(const std::byte* data, std::size_t size, WireChunk& out,
                       bool traced = false);

struct StreamPoolConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int max_streams = 8;
  ConnectorConfig connector{};
  double io_timeout_s = 10.0;
  std::uint32_t max_payload_bytes = kDefaultMaxPayloadBytes;
  SocketOptions socket{};  // applied to each stream as it connects
  /// Send each coalesced batch as one io_uring WRITEV SQE (one enter) when
  /// the kernel supports it; silently stays on sendmsg otherwise.
  bool use_uring = false;
  /// Stamp every outgoing chunk frame with this session id (the serve-plane
  /// header extension). 0 = legacy byte-identical frames. Per-chunk ids in
  /// WireChunk::session_id take precedence when nonzero.
  std::uint32_t session_id = 0;
};

class StreamPool {
 public:
  explicit StreamPool(StreamPoolConfig config);
  ~StreamPool();

  StreamPool(const StreamPool&) = delete;
  StreamPool& operator=(const StreamPool&) = delete;

  /// Serialize and send one chunk on stream `stream_id` (the calling
  /// worker's id). Connects/resumes the stream as needed. False once the
  /// pool is closed or the stream is unrecoverable.
  bool send_chunk(int stream_id, const WireChunk& chunk);

  /// Coalesced send: all `count` chunks leave as one gathered write (one
  /// sendmsg instead of 2–3 syscalls per chunk). Wire bytes are identical to
  /// `count` send_chunk calls; the receiver just sees back-to-back frames.
  bool send_chunks(int stream_id, const WireChunk* chunks, std::size_t count);

  /// Kernel-to-kernel fast path: send one chunk whose payload is read by
  /// sendfile(2) straight out of `file_fd` at `meta.offset` — the bytes never
  /// transit sender user space, so the frame goes out unchecked (checksum 0).
  /// `meta.payload`/`meta.lease` are ignored; `meta.size` is the byte count.
  bool send_chunk_file(int stream_id, const WireChunk& meta, int file_fd);

  /// Park streams >= n, resume connected streams < n (live n_n retune).
  void set_active(int n);

  /// Shut down every stream (thread-safe; wakes blocked writers).
  void close();

  int streams_connected() const { return connected_.load(); }
  std::uint64_t send_failures() const { return send_failures_.load(); }
  /// Coalescing effectiveness: chunks sent vs. gathered writes issued
  /// (chunks_sent / batch_writes = average batch size).
  std::uint64_t chunks_sent() const { return chunks_sent_.load(); }
  std::uint64_t batch_writes() const { return batch_writes_.load(); }
  /// Data-path syscalls across every stream: socket recv/send/poll calls plus
  /// io_uring enters. Takes each stream lock briefly (sockets move during
  /// lazy connect), so call from the telemetry plane, not the hot path.
  std::uint64_t io_syscalls() const;
  /// Nanoseconds send paths spent parked in POLLOUT across every stream
  /// (Socket::send_wait_ns) — the network stage's socket-level
  /// blocked-downstream time for the stage clocks. Same locking caveat as
  /// io_syscalls(). Not visible on the uring send path (ring enters block in
  /// the kernel instead of polling).
  std::uint64_t send_wait_ns() const;
  /// Streams currently sending through an io_uring ring (0 after fallback).
  int uring_streams() const { return uring_streams_.load(); }

 private:
  struct Stream {
    std::mutex mutex;
    Socket socket;
    std::unique_ptr<FrameWriter> writer;
    bool connected = false;
    bool parked = false;
    bool failed = false;
    std::vector<std::byte> scratch;  // serialized chunk headers, reused
    std::vector<ScatterSegment> segments;  // batch descriptors, reused
    // io_uring send state: the ring is created lazily with the connection
    // (one ring per stream — rings are single-threaded) and dropped for good
    // on the first ring-level failure.
    std::unique_ptr<UringRing> ring;
    bool ring_tried = false;
    std::uint64_t retired_ring_enters = 0;       // enters of a dropped ring
    std::vector<iovec> iov;                      // batch iovecs, reused
    std::vector<UringRing::Completion> cqes;     // completion scratch, reused
  };

  bool ensure_ready(Stream& stream, int stream_id);
  bool send_chunks_locked(Stream& stream, const WireChunk* chunks,
                          std::size_t count);
  /// One WRITEV SQE over stream.iov (total bytes = `total`); advances through
  /// partial completions and punts any remainder to Socket::write_vec. False
  /// = stream failed (mirrors write_scatter_batch's error contract).
  bool uring_send_locked(Stream& stream, std::size_t total);

  StreamPoolConfig config_;
  std::vector<std::unique_ptr<Stream>> streams_;
  std::atomic<int> active_;
  std::atomic<int> connected_{0};
  std::atomic<std::uint64_t> send_failures_{0};
  std::atomic<std::uint64_t> chunks_sent_{0};
  std::atomic<std::uint64_t> batch_writes_{0};
  std::atomic<int> uring_streams_{0};
  std::atomic<bool> closed_{false};
};

struct StreamAcceptorConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; read back via port()
  int backlog = 16;
  std::uint32_t max_payload_bytes = kDefaultMaxPayloadBytes;
  /// Optional payload recycling: decoded chunk payloads are acquired here.
  BufferPool* payload_pool = nullptr;
  SocketOptions socket{};  // applied to each accepted stream
  /// Zero-copy receive: frames land in arena blocks from this pool and chunk
  /// payloads are handed out as subspan leases of the very bytes recv wrote —
  /// no per-chunk copy (payload_pool is then ignored). Block size must hold
  /// at least one max-size frame; undersized frames fall back to a copied
  /// vector payload (counted in payload_copies). Null = legacy copying path.
  ArenaPool* lease_pool = nullptr;
  /// Receive through io_uring READ SQEs (requires lease_pool; registered
  /// buffers when the lease block is arena-backed). Falls back silently.
  /// On kernels with the multishot plane the readers upgrade further to
  /// multishot RECV over provided-buffer groups (one armed SQE, one
  /// completion per filled arena block) and the acceptor itself runs on a
  /// multishot ACCEPT ring.
  bool use_uring = false;
  /// Receive-side splice seam: maps (file_id, offset, size) of an inbound
  /// kFrameFlagUnchecked chunk to the sink fd its payload should land in, or
  /// -1 to decline. When set, readers splice(2) such payloads socket→file
  /// and deliver the chunk with `persisted` set — the receive twin of the
  /// sendfile path. Null (or AUTOMDT_DISABLE_SPLICE) keeps payloads in
  /// userspace. Called from reader threads; must be thread-safe.
  std::function<int(std::uint64_t file_id, std::uint64_t offset,
                    std::uint32_t size)>
      splice_sink;
};

class StreamAcceptor {
 public:
  /// Handler returns false to stop the stream (e.g. downstream queue closed).
  using ChunkHandler = std::function<bool(WireChunk&&)>;

  StreamAcceptor(StreamAcceptorConfig config, ChunkHandler on_chunk);
  ~StreamAcceptor();

  StreamAcceptor(const StreamAcceptor&) = delete;
  StreamAcceptor& operator=(const StreamAcceptor&) = delete;

  /// Bind, listen, and start the accept thread. False if the port is taken.
  bool start();

  std::uint16_t port() const { return port_; }

  /// Stop accepting, shut down every stream, join all threads. Idempotent.
  void stop();

  /// Stream gauges (receiver-side observability of sender retunes).
  int streams_open() const { return streams_open_.load(); }
  int streams_parked() const { return streams_parked_.load(); }
  int streams_active() const {
    return streams_open_.load() - streams_parked_.load();
  }
  /// Total connections ever accepted.
  std::uint64_t streams_accepted() const { return streams_accepted_.load(); }
  std::uint64_t chunks_received() const { return chunks_received_.load(); }
  std::uint64_t frame_errors() const { return frame_errors_.load(); }
  /// Payload copies made on the receive path. Legacy path: 2 per chunk
  /// (frame buffer -> Frame::payload -> WireChunk::payload). Leased path: 0,
  /// plus 1 for each frame that straddled a block boundary (its partial
  /// bytes move to the next block) or overflowed the block size.
  std::uint64_t payload_copies() const { return payload_copies_.load(); }
  /// Data-path syscalls across every reader (socket + io_uring enters).
  std::uint64_t io_syscalls() const;
  /// Readers currently receiving through io_uring (0 after fallback).
  int uring_streams() const { return uring_streams_.load(); }
  /// Readers currently on the multishot RECV plane (0 after fallback).
  int multishot_streams() const { return multishot_streams_.load(); }
  /// Chunk payloads spliced socket→file (persisted deliveries).
  std::uint64_t splices() const { return splices_.load(); }

 private:
  void accept_loop();
  /// Multishot ACCEPT ring variant; falls back to accept_loop on any ring
  /// failure or a kernel that rejects the multishot arm (nothing consumed).
  void accept_loop_uring();
  /// Spawn the right reader for one accepted connection.
  void handle_accepted(std::shared_ptr<Socket> socket);
  void reader_loop(std::shared_ptr<Socket> socket);
  void reader_loop_leased(std::shared_ptr<Socket> socket);
  /// Provided-buffer multishot RECV variant of reader_loop_leased. Frames
  /// wholly inside one provided block become subspan leases (zero-copy);
  /// frames straddling completions are reassembled through a carry buffer
  /// (counted copies). Falls back to reader_loop_leased before the first
  /// byte lands when the kernel rejects the multishot arm.
  void reader_loop_multishot(std::shared_ptr<Socket> socket);
  /// True when the splice seam is live for this run (resolver set and not
  /// disabled by AUTOMDT_DISABLE_SPLICE).
  bool splice_enabled() const;

  StreamAcceptorConfig config_;
  ChunkHandler on_chunk_;
  Listener listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  int stop_event_fd_ = -1;  // wakes the multishot accept ring on stop()

  mutable std::mutex streams_mutex_;
  std::vector<std::shared_ptr<Socket>> stream_sockets_;
  std::vector<std::shared_ptr<UringRing>> reader_rings_;
  std::vector<std::thread> reader_threads_;
  // Arena blocks retired by finished multishot readers. A block that was ever
  // handed to a kernel provided-buffer ring stays pinned until the acceptor
  // is destroyed (its ring, kept alive in reader_rings_, may still hold an
  // armed multishot SQE) — this removes any write-after-recycle window at
  // stream teardown at the cost of a few blocks per finished stream.
  std::vector<BufferLease> retired_blocks_;

  std::atomic<int> streams_open_{0};
  std::atomic<int> streams_parked_{0};
  std::atomic<std::uint64_t> streams_accepted_{0};
  std::atomic<std::uint64_t> chunks_received_{0};
  std::atomic<std::uint64_t> frame_errors_{0};
  std::atomic<std::uint64_t> payload_copies_{0};
  std::atomic<int> uring_streams_{0};
  std::atomic<int> multishot_streams_{0};
  std::atomic<std::uint64_t> splices_{0};
  std::atomic<std::uint64_t> splice_syscalls_{0};  // pwrites finishing a
                                                   // partially-buffered splice
  std::atomic<bool> stopping_{false};
  bool started_ = false;
};

}  // namespace automdt::net
