#include "net/tcp_transport.hpp"

#include <utility>

#include "net/wire.hpp"

namespace automdt::net {
namespace {

// Wire tags for the RpcMessage variant alternatives. Explicit values (rather
// than variant indices) so reordering the C++ variant can never silently
// change the protocol.
enum class RpcTag : std::uint8_t {
  kBufferStatusRequest = 1,
  kBufferStatusResponse = 2,
  kConcurrencyUpdate = 3,
  kThroughputReport = 4,
  kShutdown = 5,
  kStatsSnapshotRequest = 6,
  kStatsSnapshotResponse = 7,
  kClockSyncRequest = 8,
  kClockSyncResponse = 9,
};

// Decode-side sanity bounds for kStatsSnapshotResponse: a registry dump is
// a few dozen metrics with short dotted names; anything past these limits is
// a corrupt or hostile frame, not a bigger registry.
constexpr std::uint32_t kMaxSnapshotMetrics = 16 * 1024;
constexpr std::uint32_t kMaxMetricNameBytes = 512;

}  // namespace

void encode_rpc_message(const transfer::RpcMessage& message,
                        std::vector<std::byte>& out) {
  out.clear();
  std::visit(
      [&out](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, transfer::BufferStatusRequest>) {
          wire::put_u8(out, static_cast<std::uint8_t>(
                                RpcTag::kBufferStatusRequest));
          wire::put_u64(out, m.request_id);
        } else if constexpr (std::is_same_v<T,
                                            transfer::BufferStatusResponse>) {
          wire::put_u8(out, static_cast<std::uint8_t>(
                                RpcTag::kBufferStatusResponse));
          wire::put_u64(out, m.request_id);
          wire::put_f64(out, m.free_bytes);
          wire::put_f64(out, m.used_bytes);
          wire::put_f64(out, m.measured_at_s);
        } else if constexpr (std::is_same_v<T, transfer::ConcurrencyUpdate>) {
          wire::put_u8(out,
                       static_cast<std::uint8_t>(RpcTag::kConcurrencyUpdate));
          wire::put_u32(out, static_cast<std::uint32_t>(m.tuple.read));
          wire::put_u32(out, static_cast<std::uint32_t>(m.tuple.network));
          wire::put_u32(out, static_cast<std::uint32_t>(m.tuple.write));
        } else if constexpr (std::is_same_v<T, transfer::ThroughputReport>) {
          wire::put_u8(out,
                       static_cast<std::uint8_t>(RpcTag::kThroughputReport));
          wire::put_f64(out, m.throughput_mbps.read);
          wire::put_f64(out, m.throughput_mbps.network);
          wire::put_f64(out, m.throughput_mbps.write);
          wire::put_f64(out, m.interval_s);
        } else if constexpr (std::is_same_v<T, transfer::StatsSnapshotRequest>) {
          wire::put_u8(out, static_cast<std::uint8_t>(
                                RpcTag::kStatsSnapshotRequest));
          wire::put_u64(out, m.request_id);
        } else if constexpr (std::is_same_v<T,
                                            transfer::StatsSnapshotResponse>) {
          wire::put_u8(out, static_cast<std::uint8_t>(
                                RpcTag::kStatsSnapshotResponse));
          wire::put_u64(out, m.request_id);
          wire::put_u64(out, m.generation);
          wire::put_f64(out, m.uptime_s);
          wire::put_u32(out, static_cast<std::uint32_t>(m.metrics.size()));
          for (const transfer::MetricValue& metric : m.metrics) {
            wire::put_u32(out,
                          static_cast<std::uint32_t>(metric.name.size()));
            for (const char c : metric.name)
              wire::put_u8(out, static_cast<std::uint8_t>(c));
            wire::put_f64(out, metric.value);
          }
        } else if constexpr (std::is_same_v<T, transfer::ClockSyncRequest>) {
          wire::put_u8(out,
                       static_cast<std::uint8_t>(RpcTag::kClockSyncRequest));
          wire::put_u64(out, m.request_id);
          wire::put_u64(out, m.t0_ns);
        } else if constexpr (std::is_same_v<T, transfer::ClockSyncResponse>) {
          wire::put_u8(out,
                       static_cast<std::uint8_t>(RpcTag::kClockSyncResponse));
          wire::put_u64(out, m.request_id);
          wire::put_u64(out, m.t0_ns);
          wire::put_u64(out, m.t1_ns);
          wire::put_u64(out, m.t2_ns);
        } else {
          static_assert(std::is_same_v<T, transfer::Shutdown>);
          wire::put_u8(out, static_cast<std::uint8_t>(RpcTag::kShutdown));
        }
      },
      message);
}

std::optional<transfer::RpcMessage> decode_rpc_message(const std::byte* data,
                                                       std::size_t size) {
  if (size < 1) return std::nullopt;
  wire::Reader r(data, size);
  const auto tag = static_cast<RpcTag>(r.u8());
  switch (tag) {
    case RpcTag::kBufferStatusRequest: {
      if (r.remaining() < 8) return std::nullopt;
      transfer::BufferStatusRequest m;
      m.request_id = r.u64();
      return m;
    }
    case RpcTag::kBufferStatusResponse: {
      if (r.remaining() < 8 + 3 * 8) return std::nullopt;
      transfer::BufferStatusResponse m;
      m.request_id = r.u64();
      m.free_bytes = r.f64();
      m.used_bytes = r.f64();
      m.measured_at_s = r.f64();
      return m;
    }
    case RpcTag::kConcurrencyUpdate: {
      if (r.remaining() < 3 * 4) return std::nullopt;
      transfer::ConcurrencyUpdate m;
      m.tuple.read = static_cast<int>(r.u32());
      m.tuple.network = static_cast<int>(r.u32());
      m.tuple.write = static_cast<int>(r.u32());
      return m;
    }
    case RpcTag::kThroughputReport: {
      if (r.remaining() < 4 * 8) return std::nullopt;
      transfer::ThroughputReport m;
      m.throughput_mbps.read = r.f64();
      m.throughput_mbps.network = r.f64();
      m.throughput_mbps.write = r.f64();
      m.interval_s = r.f64();
      return m;
    }
    case RpcTag::kStatsSnapshotRequest: {
      if (r.remaining() < 8) return std::nullopt;
      transfer::StatsSnapshotRequest m;
      m.request_id = r.u64();
      return m;
    }
    case RpcTag::kStatsSnapshotResponse: {
      if (r.remaining() < 8 + 8 + 8 + 4) return std::nullopt;
      transfer::StatsSnapshotResponse m;
      m.request_id = r.u64();
      m.generation = r.u64();
      m.uptime_s = r.f64();
      const std::uint32_t n = r.u32();
      if (n > kMaxSnapshotMetrics) return std::nullopt;
      m.metrics.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        if (r.remaining() < 4) return std::nullopt;
        const std::uint32_t len = r.u32();
        if (len > kMaxMetricNameBytes || r.remaining() < len + 8)
          return std::nullopt;
        transfer::MetricValue metric;
        metric.name.resize(len);
        for (std::uint32_t j = 0; j < len; ++j)
          metric.name[j] = static_cast<char>(r.u8());
        metric.value = r.f64();
        m.metrics.push_back(std::move(metric));
      }
      return m;
    }
    case RpcTag::kClockSyncRequest: {
      if (r.remaining() < 2 * 8) return std::nullopt;
      transfer::ClockSyncRequest m;
      m.request_id = r.u64();
      m.t0_ns = r.u64();
      return m;
    }
    case RpcTag::kClockSyncResponse: {
      if (r.remaining() < 4 * 8) return std::nullopt;
      transfer::ClockSyncResponse m;
      m.request_id = r.u64();
      m.t0_ns = r.u64();
      m.t1_ns = r.u64();
      m.t2_ns = r.u64();
      return m;
    }
    case RpcTag::kShutdown:
      return transfer::Shutdown{};
  }
  return std::nullopt;
}

std::unique_ptr<TcpTransport> TcpTransport::connect(
    const std::string& host, std::uint16_t port,
    const ConnectorConfig& connector_config, const TcpTransportConfig& config) {
  Connector connector(connector_config);
  auto socket = connector.connect(host, port);
  if (!socket) return nullptr;
  return std::unique_ptr<TcpTransport>(
      new TcpTransport(std::move(*socket), config));
}

std::unique_ptr<TcpTransport> TcpTransport::adopt(
    Socket socket, const TcpTransportConfig& config) {
  if (!socket.valid()) return nullptr;
  return std::unique_ptr<TcpTransport>(
      new TcpTransport(std::move(socket), config));
}

TcpTransport::TcpTransport(Socket socket, const TcpTransportConfig& config)
    : config_(config), socket_(std::move(socket)), writer_(socket_) {
  reader_ = std::thread([this] { reader_loop(); });
}

TcpTransport::~TcpTransport() {
  close();
  if (reader_.joinable()) reader_.join();
}

void TcpTransport::send(transfer::RpcMessage message) {
  if (closed_.load()) return;  // parity with RpcPipe: drops after close
  std::lock_guard lock(write_mutex_);
  encode_rpc_message(message, encode_scratch_);
  if (writer_.write(FrameType::kRpc, encode_scratch_, config_.io_timeout_s) !=
      SocketStatus::kOk) {
    close();
  }
}

void TcpTransport::reader_loop() {
  FrameReader reader(socket_, config_.max_payload_bytes);
  Frame frame;
  for (;;) {
    const FrameError err = reader.read(frame, /*timeout_s=*/-1.0);
    if (err == FrameError::kClosed || err == FrameError::kTruncated) break;
    if (err != FrameError::kNone) {
      decode_errors_.fetch_add(1);
      break;  // control channel integrity failure: drop the connection
    }
    if (frame.type != FrameType::kRpc) continue;  // ping etc.
    auto message = decode_rpc_message(frame.payload.data(),
                                      frame.payload.size());
    if (!message) {
      decode_errors_.fetch_add(1);
      continue;
    }
    const auto deliver_at =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               config_.delivery_delay_s));
    {
      std::lock_guard lock(inbox_mutex_);
      if (inbox_closed_) break;
      inbox_.push_back({deliver_at, std::move(*message)});
    }
    inbox_cv_.notify_all();
  }
  {
    std::lock_guard lock(inbox_mutex_);
    inbox_closed_ = true;
  }
  inbox_cv_.notify_all();
}

std::optional<transfer::RpcMessage> TcpTransport::receive() {
  std::unique_lock lock(inbox_mutex_);
  for (;;) {
    if (!inbox_.empty()) {
      const auto now = Clock::now();
      if (inbox_.front().deliver_at <= now) {
        transfer::RpcMessage out = std::move(inbox_.front().message);
        inbox_.pop_front();
        return out;
      }
      inbox_cv_.wait_until(lock, inbox_.front().deliver_at);
      continue;
    }
    if (inbox_closed_) return std::nullopt;
    inbox_cv_.wait(lock);
  }
}

std::optional<transfer::RpcMessage> TcpTransport::try_receive() {
  std::lock_guard lock(inbox_mutex_);
  if (inbox_.empty() || inbox_.front().deliver_at > Clock::now())
    return std::nullopt;
  transfer::RpcMessage out = std::move(inbox_.front().message);
  inbox_.pop_front();
  return out;
}

void TcpTransport::close() {
  if (closed_.exchange(true)) return;
  socket_.shutdown_both();  // wakes the reader thread
  {
    std::lock_guard lock(inbox_mutex_);
    inbox_closed_ = true;
  }
  inbox_cv_.notify_all();
}

}  // namespace automdt::net
