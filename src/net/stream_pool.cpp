#include "net/stream_pool.hpp"

#include <fcntl.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/checksum.hpp"
#include "net/wire.hpp"

namespace automdt::net {

void encode_wire_chunk(const WireChunk& chunk, std::vector<std::byte>& out,
                       bool traced) {
  out.clear();
  out.reserve(traced ? kWireChunkTracedHeaderBytes : kWireChunkHeaderBytes);
  wire::put_u64(out, chunk.file_id);
  wire::put_u64(out, chunk.offset);
  wire::put_u32(out, chunk.size);
  wire::put_u64(out, chunk.checksum);
  if (traced) {
    wire::put_u64(out, chunk.trace_origin_ns);
    wire::put_u64(out, chunk.trace_send_ns);
  }
}

bool decode_wire_chunk(const std::byte* data, std::size_t size, WireChunk& out,
                       bool traced) {
  const std::size_t header_bytes =
      traced ? kWireChunkTracedHeaderBytes : kWireChunkHeaderBytes;
  if (size < header_bytes) return false;
  wire::Reader r(data, size);
  out.file_id = r.u64();
  out.offset = r.u64();
  out.size = r.u32();
  out.checksum = r.u64();
  if (traced) {
    out.trace_origin_ns = r.u64();
    out.trace_send_ns = r.u64();
  } else {
    out.trace_origin_ns = 0;
    out.trace_send_ns = 0;
  }
  const std::size_t payload_size = size - header_bytes;
  if (payload_size > out.size) return false;  // payload larger than declared
  out.payload.resize(payload_size);
  if (payload_size > 0)
    std::copy_n(r.cursor(), payload_size, out.payload.data());
  return true;
}

namespace {

/// In-place wire-chunk decode: fills every metadata field of `out` and
/// reports where the payload starts, without touching the payload bytes —
/// the leased receive path then carves them out as a subspan. Mirrors
/// decode_wire_chunk's validation exactly.
bool decode_wire_chunk_meta(const std::byte* data, std::size_t size,
                            bool traced, WireChunk& out,
                            std::size_t& payload_at) {
  const std::size_t header_bytes =
      traced ? kWireChunkTracedHeaderBytes : kWireChunkHeaderBytes;
  if (size < header_bytes) return false;
  wire::Reader r(data, size);
  out.file_id = r.u64();
  out.offset = r.u64();
  out.size = r.u32();
  out.checksum = r.u64();
  if (traced) {
    out.trace_origin_ns = r.u64();
    out.trace_send_ns = r.u64();
  } else {
    out.trace_origin_ns = 0;
    out.trace_send_ns = 0;
  }
  if (size - header_bytes > out.size) return false;  // larger than declared
  payload_at = header_bytes;
  return true;
}

}  // namespace

StreamPool::StreamPool(StreamPoolConfig config)
    : config_(std::move(config)), active_(config_.max_streams) {
  streams_.reserve(static_cast<std::size_t>(config_.max_streams));
  for (int i = 0; i < config_.max_streams; ++i)
    streams_.push_back(std::make_unique<Stream>());
}

StreamPool::~StreamPool() { close(); }

bool StreamPool::ensure_ready(Stream& stream, int stream_id) {
  if (stream.connected && !stream.failed) return true;
  if (stream.failed) return false;  // a broken stream loses its chunks; the
                                    // session surfaces that as a stall, not
                                    // silent reordering onto other streams
  Connector connector(config_.connector);
  auto socket = connector.connect(config_.host, config_.port);
  if (!socket) {
    stream.failed = true;
    return false;
  }
  stream.socket = std::move(*socket);
  stream.socket.configure(config_.socket);
  stream.writer = std::make_unique<FrameWriter>(stream.socket);
  stream.connected = true;
  stream.parked = false;
  connected_.fetch_add(1);
  if (config_.use_uring && !stream.ring_tried) {
    // One ring per stream (rings are single-threaded); a failed probe or
    // setup just leaves the stream on the sendmsg path.
    stream.ring_tried = true;
    if (UringRing::available()) {
      stream.ring = UringRing::create(8);
      if (stream.ring) uring_streams_.fetch_add(1);
    }
  }
  std::vector<std::byte> hello;
  wire::put_u32(hello, static_cast<std::uint32_t>(stream_id));
  if (stream.writer->write(FrameType::kStreamHello, hello,
                           config_.io_timeout_s) != SocketStatus::kOk) {
    stream.failed = true;
    return false;
  }
  return true;
}

bool StreamPool::send_chunk(int stream_id, const WireChunk& chunk) {
  return send_chunks(stream_id, &chunk, 1);
}

bool StreamPool::send_chunks(int stream_id, const WireChunk* chunks,
                             std::size_t count) {
  if (count == 0) return true;
  if (closed_.load()) return false;
  if (stream_id < 0 ||
      stream_id >= static_cast<int>(streams_.size())) {
    return false;
  }
  Stream& stream = *streams_[static_cast<std::size_t>(stream_id)];
  std::lock_guard lock(stream.mutex);
  if (closed_.load()) return false;
  if (!ensure_ready(stream, stream_id)) {
    send_failures_.fetch_add(count);
    return false;
  }
  if (stream.parked) {
    // A worker sending on a parked stream means n_n was raised before
    // set_active() got here — resume eagerly so the receiver's gauge agrees.
    if (stream.writer->write(FrameType::kStreamResume, {},
                             config_.io_timeout_s) != SocketStatus::kOk) {
      stream.failed = true;
      send_failures_.fetch_add(count);
      return false;
    }
    stream.parked = false;
  }
  // 3 iovecs per chunk must stay under IOV_MAX; engine batches are far
  // smaller, but split defensively.
  constexpr std::size_t kMaxChunksPerWrite = 256;
  for (std::size_t at = 0; at < count; at += kMaxChunksPerWrite) {
    const std::size_t n = std::min(kMaxChunksPerWrite, count - at);
    if (!send_chunks_locked(stream, chunks + at, n)) {
      send_failures_.fetch_add(count - at);
      return false;
    }
  }
  return true;
}

bool StreamPool::send_chunks_locked(Stream& stream, const WireChunk* chunks,
                                    std::size_t count) {
  // All chunk metadata headers go into one scratch buffer; segment pointers
  // are taken after the buffer stops growing. Traced chunks (non-zero send
  // stamp) carry the 16-byte trace extension and flag their frame.
  stream.scratch.clear();
  stream.scratch.reserve(count * kWireChunkTracedHeaderBytes);
  for (std::size_t i = 0; i < count; ++i) {
    const WireChunk& chunk = chunks[i];
    wire::put_u64(stream.scratch, chunk.file_id);
    wire::put_u64(stream.scratch, chunk.offset);
    wire::put_u32(stream.scratch, chunk.size);
    wire::put_u64(stream.scratch, chunk.checksum);
    if (chunk.trace_send_ns != 0) {
      wire::put_u64(stream.scratch, chunk.trace_origin_ns);
      wire::put_u64(stream.scratch, chunk.trace_send_ns);
    }
  }
  stream.segments.clear();
  stream.segments.reserve(count);
  std::size_t header_at = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const bool traced = chunks[i].trace_send_ns != 0;
    ScatterSegment seg;
    seg.head = stream.scratch.data() + header_at;
    seg.head_size =
        traced ? kWireChunkTracedHeaderBytes : kWireChunkHeaderBytes;
    seg.body = chunks[i].payload_data();
    seg.body_size = chunks[i].payload_size();
    seg.flags = traced ? kFrameFlagTraced : 0;
    seg.session_id = chunks[i].session_id != 0 ? chunks[i].session_id
                                               : config_.session_id;
    header_at += seg.head_size;
    stream.segments.push_back(seg);
  }
  if (stream.ring) {
    const std::size_t total = stream.writer->build_scatter_batch(
        FrameType::kChunk, stream.segments.data(), count, stream.iov);
    if (!uring_send_locked(stream, total)) return false;
  } else if (stream.writer->write_scatter_batch(FrameType::kChunk,
                                                stream.segments.data(), count,
                                                config_.io_timeout_s) !=
             SocketStatus::kOk) {
    stream.failed = true;
    return false;
  }
  chunks_sent_.fetch_add(count);
  batch_writes_.fetch_add(1);
  return true;
}

bool StreamPool::uring_send_locked(Stream& stream, std::size_t total) {
  iovec* iov = stream.iov.data();
  std::size_t iovcnt = stream.iov.size();
  std::size_t done = 0;
  while (done < total) {
    bool punt = false;
    if (!stream.ring->prep_writev(stream.socket.fd(), iov,
                                  static_cast<unsigned>(iovcnt), 1)) {
      punt = true;  // SQ full (cannot happen at one SQE per batch) — degrade
    } else if (stream.ring->submit_and_wait(1, stream.cqes) <= 0 ||
               stream.cqes.empty()) {
      // Ring-level failure: retire the ring for good, finish via sendmsg.
      stream.retired_ring_enters += stream.ring->enters();
      stream.ring.reset();
      uring_streams_.fetch_sub(1);
      punt = true;
    } else {
      const std::int32_t res = stream.cqes.front().res;
      if (res > 0) {
        done += static_cast<std::size_t>(res);
        // Partial gathered write: advance the iovec window in place, exactly
        // like Socket::write_vec does between sendmsg calls.
        std::size_t left = static_cast<std::size_t>(res);
        while (iovcnt > 0 && left >= iov->iov_len) {
          left -= iov->iov_len;
          ++iov;
          --iovcnt;
        }
        if (iovcnt > 0 && left > 0) {
          iov->iov_base = static_cast<std::byte*>(iov->iov_base) + left;
          iov->iov_len -= left;
        }
        continue;
      }
      if (res == -EINTR) continue;
      // -EAGAIN (no fast-poll?) or a zero-byte writev: let write_vec's
      // poll-driven loop wait for the socket properly instead of spinning.
      if (res == -EAGAIN || res == 0) {
        punt = true;
      } else {
        stream.failed = true;
        return false;
      }
    }
    if (punt) {
      if (stream.socket.write_vec(iov, static_cast<int>(iovcnt),
                                  config_.io_timeout_s) != SocketStatus::kOk) {
        stream.failed = true;
        return false;
      }
      return true;
    }
  }
  return true;
}

bool StreamPool::send_chunk_file(int stream_id, const WireChunk& meta,
                                 int file_fd) {
  if (closed_.load()) return false;
  if (stream_id < 0 || stream_id >= static_cast<int>(streams_.size()))
    return false;
  Stream& stream = *streams_[static_cast<std::size_t>(stream_id)];
  std::lock_guard lock(stream.mutex);
  if (closed_.load()) return false;
  if (!ensure_ready(stream, stream_id)) {
    send_failures_.fetch_add(1);
    return false;
  }
  if (stream.parked) {
    if (stream.writer->write(FrameType::kStreamResume, {},
                             config_.io_timeout_s) != SocketStatus::kOk) {
      stream.failed = true;
      send_failures_.fetch_add(1);
      return false;
    }
    stream.parked = false;
  }
  const bool traced = meta.trace_send_ns != 0;
  stream.scratch.clear();
  wire::put_u64(stream.scratch, meta.file_id);
  wire::put_u64(stream.scratch, meta.offset);
  wire::put_u32(stream.scratch, meta.size);
  wire::put_u64(stream.scratch, meta.checksum);
  if (traced) {
    wire::put_u64(stream.scratch, meta.trace_origin_ns);
    wire::put_u64(stream.scratch, meta.trace_send_ns);
  }
  if (stream.writer->write_file(FrameType::kChunk, stream.scratch, file_fd,
                                meta.offset, meta.size, config_.io_timeout_s,
                                traced ? kFrameFlagTraced : 0,
                                meta.session_id != 0 ? meta.session_id
                                                     : config_.session_id) !=
      SocketStatus::kOk) {
    stream.failed = true;
    send_failures_.fetch_add(1);
    return false;
  }
  chunks_sent_.fetch_add(1);
  batch_writes_.fetch_add(1);
  return true;
}

std::uint64_t StreamPool::io_syscalls() const {
  std::uint64_t total = 0;
  for (const auto& entry : streams_) {
    Stream& stream = *entry;
    std::lock_guard lock(stream.mutex);
    total += stream.socket.syscalls() + stream.retired_ring_enters;
    if (stream.ring) total += stream.ring->enters();
  }
  return total;
}

std::uint64_t StreamPool::send_wait_ns() const {
  std::uint64_t total = 0;
  for (const auto& entry : streams_) {
    Stream& stream = *entry;
    std::lock_guard lock(stream.mutex);
    total += stream.socket.send_wait_ns();
  }
  return total;
}

void StreamPool::set_active(int n) {
  n = std::clamp(n, 0, static_cast<int>(streams_.size()));
  active_.store(n);
  if (closed_.load()) return;
  for (int i = 0; i < static_cast<int>(streams_.size()); ++i) {
    Stream& stream = *streams_[static_cast<std::size_t>(i)];
    std::lock_guard lock(stream.mutex);
    if (!stream.connected || stream.failed) continue;
    const bool should_park = i >= n;
    if (should_park == stream.parked) continue;
    const FrameType type =
        should_park ? FrameType::kStreamPark : FrameType::kStreamResume;
    if (stream.writer->write(type, {}, config_.io_timeout_s) !=
        SocketStatus::kOk) {
      stream.failed = true;
      continue;
    }
    stream.parked = should_park;
  }
}

void StreamPool::close() {
  if (closed_.exchange(true)) return;
  // shutdown() is safe against concurrent sends; fds are reclaimed when the
  // streams are destroyed (after the engine has joined its workers).
  for (auto& stream : streams_) stream->socket.shutdown_both();
}

StreamAcceptor::StreamAcceptor(StreamAcceptorConfig config,
                               ChunkHandler on_chunk)
    : config_(std::move(config)), on_chunk_(std::move(on_chunk)) {}

StreamAcceptor::~StreamAcceptor() { stop(); }

bool StreamAcceptor::start() {
  auto listener = Listener::open(config_.host, config_.port, config_.backlog);
  if (!listener) return false;
  listener_ = std::move(*listener);
  port_ = listener_.port();
  started_ = true;
  bool uring_accept = false;
  if (config_.use_uring && UringRing::multishot_available()) {
    // The multishot accept ring blocks in io_uring_enter, so stop() wakes it
    // through an eventfd READ armed alongside the accept SQE.
    stop_event_fd_ = ::eventfd(0, EFD_CLOEXEC);
    uring_accept = stop_event_fd_ >= 0;
  }
  accept_thread_ = std::thread([this, uring_accept] {
    if (uring_accept) {
      accept_loop_uring();
    } else {
      accept_loop();
    }
  });
  return true;
}

void StreamAcceptor::accept_loop() {
  while (!stopping_.load()) {
    auto socket = listener_.accept(/*timeout_s=*/0.2);
    if (!socket) continue;  // timeout or shutdown; loop re-checks stopping_
    handle_accepted(std::make_shared<Socket>(std::move(*socket)));
  }
}

void StreamAcceptor::accept_loop_uring() {
  constexpr std::uint64_t kAcceptUd = 1;
  constexpr std::uint64_t kStopUd = 2;
  std::shared_ptr<UringRing> ring = UringRing::create(8);
  if (!ring) {
    accept_loop();
    return;
  }
  {
    std::lock_guard lock(streams_mutex_);
    reader_rings_.push_back(ring);  // enters() visible to io_syscalls()
  }
  std::uint64_t stop_buf = 0;
  bool accept_armed = false;
  bool stop_armed = false;
  std::vector<UringRing::Completion> cqes;
  while (!stopping_.load()) {
    if (!accept_armed) {
      if (!ring->prep_accept_multishot(listener_.fd(), kAcceptUd)) break;
      accept_armed = true;
    }
    if (!stop_armed) {
      if (!ring->prep_read(stop_event_fd_, &stop_buf, sizeof(stop_buf), 0,
                           kStopUd)) {
        break;
      }
      stop_armed = true;
    }
    if (ring->submit_and_wait(1, cqes) <= 0) break;
    for (const auto& cqe : cqes) {
      if (cqe.user_data == kStopUd) return;
      if ((cqe.flags & UringRing::kCqeFlagMore) == 0) accept_armed = false;
      if (cqe.res >= 0) {
        handle_accepted(std::make_shared<Socket>(cqe.res));
      } else if (cqe.res == -EINVAL || cqe.res == -EOPNOTSUPP) {
        // Kernel without multishot accept: nothing was consumed — the
        // classic poll-accept loop takes over on the same listener.
        accept_loop();
        return;
      }
      // Transient failures (-ECONNABORTED, -EINTR, ...) just re-arm.
    }
  }
  // Ring-level failure mid-run: the listener is untouched, so the classic
  // loop can keep accepting until stop().
  if (!stopping_.load()) accept_loop();
}

void StreamAcceptor::handle_accepted(std::shared_ptr<Socket> shared) {
  shared->configure(config_.socket);
  streams_accepted_.fetch_add(1);
  streams_open_.fetch_add(1);
  std::lock_guard lock(streams_mutex_);
  if (stopping_.load()) {
    streams_open_.fetch_sub(1);
    shared->shutdown_both();
    return;
  }
  stream_sockets_.push_back(shared);
  reader_threads_.emplace_back([this, shared = std::move(shared)] {
    if (config_.lease_pool != nullptr) {
      // Splice needs to stop reading at frame boundaries, which a multishot
      // recv (kernel picks how much lands per completion) cannot do — so a
      // live splice seam keeps the stream on the single-shot leased reader.
      if (config_.use_uring && UringRing::multishot_available() &&
          !splice_enabled()) {
        reader_loop_multishot(shared);
      } else {
        reader_loop_leased(shared);
      }
    } else {
      reader_loop(shared);
    }
  });
}

bool StreamAcceptor::splice_enabled() const {
  if (!config_.splice_sink) return false;
  const char* value = std::getenv("AUTOMDT_DISABLE_SPLICE");
  return value == nullptr || value[0] == '\0' || value[0] == '0';
}

void StreamAcceptor::reader_loop(std::shared_ptr<Socket> socket) {
  // Buffered: one recv pulls a whole coalesced batch of frames; decoding
  // back-to-back frames from the buffer costs no further syscalls.
  BufferedFrameReader reader(*socket, config_.max_payload_bytes);
  Frame frame;
  WireChunk chunk;
  bool parked = false;
  for (;;) {
    const FrameError err = reader.read(frame, /*timeout_s=*/-1.0);
    if (err == FrameError::kClosed) break;  // orderly stream end
    if (err != FrameError::kNone) {
      // Corrupt or truncated stream: count it and drop the connection —
      // a data channel that fails validation cannot be resynchronized.
      frame_errors_.fetch_add(1);
      socket->shutdown_both();
      break;
    }
    switch (frame.type) {
      case FrameType::kStreamHello:
        break;  // stream identity is implicit in the connection
      case FrameType::kStreamPark:
        if (!parked) {
          parked = true;
          streams_parked_.fetch_add(1);
        }
        break;
      case FrameType::kStreamResume:
        if (parked) {
          parked = false;
          streams_parked_.fetch_sub(1);
        }
        break;
      case FrameType::kChunk: {
        if (config_.payload_pool)
          chunk.payload = config_.payload_pool->acquire(0);
        if (!decode_wire_chunk(frame.payload.data(), frame.payload.size(),
                               chunk,
                               (frame.flags & kFrameFlagTraced) != 0)) {
          frame_errors_.fetch_add(1);
          socket->shutdown_both();
          goto done;
        }
        chunk.session_id = frame.session_id;
        chunks_received_.fetch_add(1);
        // Copied path: recv buffer -> Frame::payload -> WireChunk::payload.
        payload_copies_.fetch_add(2);
        if (!on_chunk_(std::move(chunk))) goto done;  // downstream closed
        chunk = WireChunk{};
        break;
      }
      default:
        break;  // ping/pong and future types are ignorable on this plane
    }
  }
done:
  if (parked) streams_parked_.fetch_sub(1);
  streams_open_.fetch_sub(1);
}

void StreamAcceptor::reader_loop_leased(std::shared_ptr<Socket> socket) {
  ArenaPool& pool = *config_.lease_pool;
  const std::size_t cap = pool.block_bytes();

  // Optional io_uring receive: one ring per reader; the arena's stable block
  // table is registered once so recvs into arena-backed blocks can go out as
  // READ_FIXED SQEs.
  std::shared_ptr<UringRing> ring;
  if (config_.use_uring && UringRing::available()) {
    if (auto created = UringRing::create(8)) {
      created->register_buffers(pool.registered_iovecs(),
                                static_cast<unsigned>(pool.block_count()));
      ring = std::move(created);
      std::lock_guard lock(streams_mutex_);
      reader_rings_.push_back(ring);
      uring_streams_.fetch_add(1);
    }
  }
  std::vector<UringRing::Completion> cqes;

  // One recv into `dst`: io_uring READ (fixed when the block is registered),
  // degrading transparently to the classic poll+recv pair.
  auto recv_some = [&](std::byte* dst, std::size_t room, std::size_t* got,
                       std::uint32_t buf_index) -> SocketStatus {
    while (ring) {
      const auto len =
          static_cast<unsigned>(std::min<std::size_t>(room, 1u << 30));
      const bool prepped =
          ring->buffers_registered() && buf_index != BufferLease::kUnregistered
              ? ring->prep_read_fixed(socket->fd(), dst, len, 0, buf_index, 1)
              : ring->prep_read(socket->fd(), dst, len, 0, 1);
      if (!prepped || ring->submit_and_wait(1, cqes) <= 0 || cqes.empty()) {
        // Ring-level failure: this reader goes classic for good. The shared
        // handle in reader_rings_ keeps enters() visible to io_syscalls().
        uring_streams_.fetch_sub(1);
        ring.reset();
        break;
      }
      const std::int32_t res = cqes.front().res;
      if (res > 0) {
        *got = static_cast<std::size_t>(res);
        return SocketStatus::kOk;
      }
      if (res == 0) return SocketStatus::kClosed;
      if (res == -EINTR) continue;
      if (res == -EAGAIN) break;  // no fast poll: this one recv goes classic
      return SocketStatus::kError;
    }
    return socket->read_some(dst, room, /*timeout_s=*/-1.0, got);
  };

  BufferLease block = pool.acquire();
  std::size_t begin = 0;
  std::size_t end = 0;
  WireChunk chunk;
  bool parked = false;
  // Splice seam state: the pipe pair is created lazily on the first eligible
  // frame; any setup failure or kernel refusal turns the seam off for this
  // stream only (splice_ok) and the classic assemble-in-block path resumes.
  bool splice_ok = splice_enabled();
  int pipe_fds[2] = {-1, -1};
  if (cap < kFrameHeaderBytes) {  // pathological pool; nothing can ever parse
    frame_errors_.fetch_add(1);
    socket->shutdown_both();
    goto done;
  }
  for (;;) {
    // 1) Slice a complete frame straight out of the block, in place.
    FrameHeaderView hdr;
    const FrameError pe = parse_frame_header(
        block.data() + begin, end - begin, hdr, config_.max_payload_bytes);
    if (pe != FrameError::kNone && pe != FrameError::kNeedMoreData) {
      frame_errors_.fetch_add(1);
      socket->shutdown_both();
      goto done;
    }
    if (pe == FrameError::kNone &&
        end - begin >= hdr.header_bytes + hdr.length) {
      const std::byte* payload = block.data() + begin + hdr.header_bytes;
      if ((hdr.flags & kFrameFlagUnchecked) == 0 &&
          fnv1a(payload, hdr.length, hdr.checksum_seed) != hdr.checksum) {
        frame_errors_.fetch_add(1);
        socket->shutdown_both();
        goto done;
      }
      switch (hdr.type) {
        case FrameType::kStreamHello:
          break;
        case FrameType::kStreamPark:
          if (!parked) {
            parked = true;
            streams_parked_.fetch_add(1);
          }
          break;
        case FrameType::kStreamResume:
          if (parked) {
            parked = false;
            streams_parked_.fetch_sub(1);
          }
          break;
        case FrameType::kChunk: {
          std::size_t payload_at = 0;
          if (!decode_wire_chunk_meta(payload, hdr.length,
                                      (hdr.flags & kFrameFlagTraced) != 0,
                                      chunk, payload_at)) {
            frame_errors_.fetch_add(1);
            socket->shutdown_both();
            goto done;
          }
          // Zero-copy hand-off: the payload stays exactly where recv wrote
          // it and the consumer gets a refcounted view of those bytes.
          chunk.session_id = hdr.session_id;
          chunk.payload.clear();
          chunk.lease =
              block.subspan(begin + hdr.header_bytes + payload_at,
                            hdr.length - payload_at);
          chunks_received_.fetch_add(1);
          if (!on_chunk_(std::move(chunk))) goto done;  // downstream closed
          chunk = WireChunk{};
          break;
        }
        default:
          break;  // ping/pong and future types are ignorable on this plane
      }
      begin += hdr.header_bytes + hdr.length;
      continue;
    }

    // 2a) Incomplete unchecked chunk with its wire header fully buffered:
    // splice the rest of the payload socket→file when the engine resolves a
    // sink fd — the receive twin of the sendfile send path. The payload
    // bytes that already landed in the block go out via pwrite (same offset
    // math the writer stage would use); everything still in flight moves
    // kernel-to-kernel through the reader's pipe. Any refusal before a byte
    // is consumed falls through to the classic path — the duplicate pwrite
    // of the buffered prefix is byte-identical and therefore harmless.
    if (pe == FrameError::kNone && splice_ok &&
        hdr.type == FrameType::kChunk &&
        (hdr.flags & kFrameFlagUnchecked) != 0) {
      const bool traced = (hdr.flags & kFrameFlagTraced) != 0;
      const std::size_t meta_bytes =
          traced ? kWireChunkTracedHeaderBytes : kWireChunkHeaderBytes;
      std::size_t payload_at = 0;
      const std::byte* body = block.data() + begin + hdr.header_bytes;
      const std::size_t body_have = end - begin - hdr.header_bytes;
      if (body_have >= meta_bytes &&
          decode_wire_chunk_meta(body, meta_bytes, traced, chunk,
                                 payload_at)) {
        const int sink_fd =
            config_.splice_sink(chunk.file_id, chunk.offset, chunk.size);
        if (sink_fd >= 0 && pipe_fds[0] < 0 &&
            ::pipe2(pipe_fds, O_CLOEXEC) != 0) {
          pipe_fds[0] = pipe_fds[1] = -1;
          splice_ok = false;
        }
        if (sink_fd >= 0 && splice_ok) {
          const std::size_t total = hdr.length - payload_at;
          const std::size_t buffered = body_have - payload_at;
          // 1. Already-received payload bytes: pwrite from the block.
          std::size_t put = 0;
          bool sink_ok = true;
          while (put < buffered) {
            const ssize_t n =
                ::pwrite(sink_fd, body + payload_at + put, buffered - put,
                         static_cast<off_t>(chunk.offset + put));
            splice_syscalls_.fetch_add(1);
            if (n < 0 && errno == EINTR) continue;
            if (n <= 0) {
              sink_ok = false;
              break;
            }
            put += static_cast<std::size_t>(n);
          }
          if (!sink_ok) {
            splice_ok = false;  // sink refused; classic path will surface it
          } else {
            bool unsupported = false;
            SocketStatus ss = SocketStatus::kOk;
            if (total > buffered) {
              ss = socket->splice_to_file(sink_fd, chunk.offset + buffered,
                                          total - buffered, pipe_fds[0],
                                          pipe_fds[1], /*timeout_s=*/-1.0,
                                          &unsupported);
            }
            if (ss == SocketStatus::kOk) {
              chunk.session_id = hdr.session_id;
              chunk.payload.clear();
              chunk.persisted = true;
              begin = end;  // every buffered byte belonged to this frame
              chunks_received_.fetch_add(1);
              splices_.fetch_add(1);
              if (!on_chunk_(std::move(chunk))) goto done;
              chunk = WireChunk{};
              continue;
            }
            if (unsupported) {
              splice_ok = false;  // nothing consumed; finish frame classically
            } else {
              // Bytes were consumed off the socket mid-frame: the stream
              // cannot be resynchronized.
              frame_errors_.fetch_add(1);
              socket->shutdown_both();
              goto done;
            }
          }
        }
      }
    }

    // 2) Frame incomplete. Carved payload leases forbid rewinding a block,
    // so a frame that cannot finish in the tail moves its partial bytes to a
    // fresh block (the one counted copy a boundary-spanning frame pays).
    // With an incomplete header, demand the session-extended size — a
    // 4-byte overshoot only ever costs one extra boundary move, and step 3
    // recvs whatever is available regardless.
    const std::size_t need = pe == FrameError::kNone
                                 ? hdr.header_bytes + hdr.length
                                 : kFrameHeaderBytes + kFrameSessionExtBytes;
    if (need > cap) {
      // A splice-eligible frame can land with its wire-chunk meta still in
      // flight (a byte-starved first recv): pull the missing meta bytes into
      // the block tail and re-parse, so arrival timing cannot silently
      // demote the frame to the copied heap path below. (If the tail cannot
      // fit the meta — frame parsed near the block edge — the heap path is
      // still correct, just counted as copies.)
      if (pe == FrameError::kNone && splice_ok &&
          hdr.type == FrameType::kChunk &&
          (hdr.flags & kFrameFlagUnchecked) != 0) {
        const std::size_t splice_need =
            hdr.header_bytes + (((hdr.flags & kFrameFlagTraced) != 0)
                                    ? kWireChunkTracedHeaderBytes
                                    : kWireChunkHeaderBytes);
        if (end - begin < splice_need && begin + splice_need <= cap) {
          std::size_t got = 0;
          if (recv_some(block.data() + end, cap - end, &got,
                        block.registered_index()) != SocketStatus::kOk) {
            frame_errors_.fetch_add(1);  // truncated mid-frame
            socket->shutdown_both();
            goto done;
          }
          end += got;
          continue;
        }
      }
      // Frame larger than an arena block (foreign sender): assemble this one
      // in a one-shot heap buffer — the copied path — and keep streaming.
      const std::size_t partial = end - begin;
      std::vector<std::byte> big(need);
      std::memcpy(big.data(), block.data() + begin, partial);
      begin = end;
      if (socket->read_exact(big.data() + partial, need - partial,
                             /*timeout_s=*/-1.0) != SocketStatus::kOk) {
        frame_errors_.fetch_add(1);
        socket->shutdown_both();
        goto done;
      }
      Frame frame;
      if (decode_frame(big.data(), big.size(), frame,
                       config_.max_payload_bytes)
              .error != FrameError::kNone) {
        frame_errors_.fetch_add(1);
        socket->shutdown_both();
        goto done;
      }
      if (frame.type == FrameType::kChunk) {
        if (!decode_wire_chunk(frame.payload.data(), frame.payload.size(),
                               chunk,
                               (frame.flags & kFrameFlagTraced) != 0)) {
          frame_errors_.fetch_add(1);
          socket->shutdown_both();
          goto done;
        }
        chunk.session_id = frame.session_id;
        chunks_received_.fetch_add(1);
        payload_copies_.fetch_add(2);
        if (!on_chunk_(std::move(chunk))) goto done;
        chunk = WireChunk{};
      }
      continue;
    }
    if (begin + need > cap) {
      BufferLease next = pool.acquire();
      const std::size_t partial = end - begin;
      if (partial > 0) {
        std::memcpy(next.data(), block.data() + begin, partial);
        payload_copies_.fetch_add(1);  // the block-boundary-spanning frame
      }
      block = std::move(next);  // old block recycles once its leases drop
      begin = 0;
      end = partial;
    }

    // 3) Pull more bytes into the tail.
    std::size_t got = 0;
    const SocketStatus s = recv_some(block.data() + end, cap - end, &got,
                                     block.registered_index());
    if (s == SocketStatus::kOk) {
      end += got;
      continue;
    }
    if (s == SocketStatus::kClosed && begin == end) goto done;  // orderly EOF
    // Truncated mid-frame or errno-level failure: unrecoverable stream.
    frame_errors_.fetch_add(1);
    socket->shutdown_both();
    goto done;
  }
done:
  if (pipe_fds[0] >= 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
  }
  if (parked) streams_parked_.fetch_sub(1);
  streams_open_.fetch_sub(1);
  if (ring) uring_streams_.fetch_sub(1);
}

void StreamAcceptor::reader_loop_multishot(std::shared_ptr<Socket> socket) {
  ArenaPool& pool = *config_.lease_pool;
  const std::size_t cap = pool.block_bytes();
  constexpr unsigned kGroupEntries = 8;  // pbuf slots == max live blocks
  constexpr std::uint64_t kRecvUd = 1;

  std::shared_ptr<UringRing> ring;
  if (cap >= kFrameHeaderBytes + kFrameSessionExtBytes) {
    if (auto created = UringRing::create(16)) {
      if (created->setup_buf_ring(kGroupEntries, /*bgid=*/0)) {
        ring = std::move(created);
        std::lock_guard lock(streams_mutex_);
        reader_rings_.push_back(ring);
      }
    }
  }
  if (!ring) {
    reader_loop_leased(std::move(socket));
    return;
  }
  uring_streams_.fetch_add(1);
  multishot_streams_.fetch_add(1);

  // Provided-buffer group: whole arena blocks, bid == slot index. A block is
  // kernel-owned from provide_buffer until the completion naming its bid
  // comes back; afterwards it may still be pinned by chunk leases carved out
  // of it (ref_count > 1) and is only re-provided once those drop.
  struct Slot {
    BufferLease lease;
    bool kernel_owned = false;
  };
  std::vector<Slot> slots;
  slots.reserve(kGroupEntries);
  auto provide = [&](std::size_t bid) {
    ring->provide_buffer(slots[bid].lease.data(), static_cast<unsigned>(cap),
                         static_cast<unsigned short>(bid));
    slots[bid].kernel_owned = true;
  };
  for (std::size_t i = 0; i < 4; ++i) {
    slots.push_back({pool.acquire(), false});
    provide(i);
  }
  // Returned blocks whose leases all dropped go back to the kernel; while
  // the consumer still pins everything the group grows, up to the ring size.
  auto replenish = [&]() -> bool {
    bool provided = false;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (!slots[i].kernel_owned && slots[i].lease.ref_count() == 1) {
        provide(i);
        provided = true;
      }
    }
    if (!provided && slots.size() < kGroupEntries) {
      slots.push_back({pool.acquire(), false});
      provide(slots.size() - 1);
      provided = true;
    }
    return provided;
  };

  std::vector<std::byte> carry;  // partial frame spanning completions
  std::vector<UringRing::Completion> cqes;
  WireChunk chunk;
  bool parked = false;
  bool armed = false;
  bool first_completion = true;
  bool failed = false;    // frame/ring error: count + shutdown
  bool finished = false;  // orderly EOF, downstream closed, or stop()

  auto handle_control = [&](FrameType type) {
    if (type == FrameType::kStreamPark) {
      if (!parked) {
        parked = true;
        streams_parked_.fetch_add(1);
      }
    } else if (type == FrameType::kStreamResume) {
      if (parked) {
        parked = false;
        streams_parked_.fetch_sub(1);
      }
    }
  };

  // One fully-reassembled frame out of the carry buffer (the copied path).
  // Returns false to stop the stream.
  auto dispatch_carry = [&]() -> bool {
    Frame frame;
    if (decode_frame(carry.data(), carry.size(), frame,
                     config_.max_payload_bytes)
            .error != FrameError::kNone) {
      failed = true;
      return false;
    }
    if (frame.type == FrameType::kChunk) {
      if (!decode_wire_chunk(frame.payload.data(), frame.payload.size(),
                             chunk, (frame.flags & kFrameFlagTraced) != 0)) {
        failed = true;
        return false;
      }
      chunk.session_id = frame.session_id;
      chunks_received_.fetch_add(1);
      payload_copies_.fetch_add(2);  // carry -> Frame -> WireChunk
      if (!on_chunk_(std::move(chunk))) {
        finished = true;  // downstream closed
        return false;
      }
      chunk = WireChunk{};
    } else {
      handle_control(frame.type);
    }
    carry.clear();
    return true;
  };

  // Feed carry from data[pos..len) until its frame completes (dispatched) or
  // the buffer is exhausted. Returns false to stop the stream.
  auto complete_carry = [&](const std::byte* data, std::size_t len,
                            std::size_t& pos) -> bool {
    while (true) {
      FrameHeaderView hdr;
      const FrameError ce = parse_frame_header(carry.data(), carry.size(),
                                               hdr, config_.max_payload_bytes);
      std::size_t need = 0;
      if (ce == FrameError::kNeedMoreData) {
        need = kFrameHeaderBytes + kFrameSessionExtBytes;
      } else if (ce == FrameError::kNone) {
        need = hdr.header_bytes + hdr.length;
        if (carry.size() >= need) return dispatch_carry();
      } else {
        failed = true;
        return false;
      }
      if (pos >= len) return true;  // buffer exhausted; carry keeps growing
      const std::size_t take = std::min(need - carry.size(), len - pos);
      carry.insert(carry.end(), data + pos, data + pos + take);
      pos += take;
    }
  };

  // Parse one filled provided buffer. Complete frames become zero-copy
  // subspan leases of the slot's block; a partial tail moves into carry.
  // Returns false to stop the stream.
  auto process_buffer = [&](std::size_t bid, std::size_t len) -> bool {
    const std::byte* data = slots[bid].lease.data();
    std::size_t pos = 0;
    if (!carry.empty() && !complete_carry(data, len, pos)) return false;
    while (pos < len) {
      FrameHeaderView hdr;
      const FrameError pe = parse_frame_header(data + pos, len - pos, hdr,
                                               config_.max_payload_bytes);
      if (pe != FrameError::kNone && pe != FrameError::kNeedMoreData) {
        failed = true;
        return false;
      }
      if (pe == FrameError::kNeedMoreData ||
          len - pos < hdr.header_bytes + hdr.length) {
        carry.assign(data + pos, data + len);
        payload_copies_.fetch_add(1);  // completion-boundary-spanning frame
        return true;
      }
      const std::byte* payload = data + pos + hdr.header_bytes;
      if ((hdr.flags & kFrameFlagUnchecked) == 0 &&
          fnv1a(payload, hdr.length, hdr.checksum_seed) != hdr.checksum) {
        failed = true;
        return false;
      }
      if (hdr.type == FrameType::kChunk) {
        std::size_t payload_at = 0;
        if (!decode_wire_chunk_meta(payload, hdr.length,
                                    (hdr.flags & kFrameFlagTraced) != 0,
                                    chunk, payload_at)) {
          failed = true;
          return false;
        }
        chunk.session_id = hdr.session_id;
        chunk.payload.clear();
        chunk.lease = slots[bid].lease.subspan(
            pos + hdr.header_bytes + payload_at, hdr.length - payload_at);
        chunks_received_.fetch_add(1);
        if (!on_chunk_(std::move(chunk))) {
          finished = true;
          return false;
        }
        chunk = WireChunk{};
      } else {
        handle_control(hdr.type);
      }
      pos += hdr.header_bytes + hdr.length;
    }
    return true;
  };

  while (!failed && !finished && !stopping_.load()) {
    if (!armed) {
      if (!ring->prep_recv_multishot(socket->fd(), kRecvUd)) {
        failed = true;
        break;
      }
      armed = true;
    }
    if (ring->submit_and_wait(1, cqes) <= 0 || cqes.empty()) {
      failed = true;
      break;
    }
    for (const auto& cqe : cqes) {
      if ((cqe.flags & UringRing::kCqeFlagMore) == 0) armed = false;
      if (failed || finished) continue;  // drain the rest of the batch
      if (cqe.res == -ENOBUFS) {
        // The group was dry at the instant the kernel reached for a buffer,
        // and this CQE also killed the multishot. Any slot re-provided while
        // draining this batch is still sitting unconsumed in the ring (dead
        // recvs don't take buffers), so re-arming over it suffices; only if
        // truly nothing is in flight do we wait for chunk consumers to drop
        // their leases and free a block.
        const auto ring_stocked = [&] {
          for (const auto& slot : slots)
            if (slot.kernel_owned) return true;
          return false;
        };
        while (!replenish() && !ring_stocked()) {
          if (stopping_.load()) {
            finished = true;
            break;
          }
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        continue;
      }
      if (cqe.res == -EINTR || cqe.res == -EAGAIN) continue;  // just re-arm
      if (cqe.res == 0) {
        if (!carry.empty()) failed = true;  // truncated mid-frame
        finished = true;
        continue;
      }
      if (cqe.res < 0) {
        if (first_completion &&
            (cqe.res == -EINVAL || cqe.res == -EOPNOTSUPP)) {
          // Kernel without multishot recv: nothing was consumed. Retire the
          // provided blocks (they must outlive the ring kept in
          // reader_rings_) and fall back to the single-shot leased reader.
          uring_streams_.fetch_sub(1);
          multishot_streams_.fetch_sub(1);
          {
            std::lock_guard lock(streams_mutex_);
            for (auto& slot : slots)
              retired_blocks_.push_back(std::move(slot.lease));
          }
          reader_loop_leased(std::move(socket));
          return;
        }
        failed = true;  // -ECONNRESET and friends
        continue;
      }
      first_completion = false;
      std::size_t bid = slots.size();
      if ((cqe.flags & UringRing::kCqeFlagBuffer) != 0)
        bid = cqe.flags >> UringRing::kCqeBufferShift;
      if (bid >= slots.size()) {
        failed = true;  // buffer id outside our group: ABI violation
        continue;
      }
      slots[bid].kernel_owned = false;
      if (!process_buffer(bid, static_cast<std::size_t>(cqe.res))) continue;
      // Hand fully-released blocks straight back to the kernel.
      for (std::size_t i = 0; i < slots.size(); ++i) {
        if (!slots[i].kernel_owned && slots[i].lease.ref_count() == 1)
          provide(i);
      }
    }
  }
  if (failed) {
    frame_errors_.fetch_add(1);
    socket->shutdown_both();
  }
  if (parked) streams_parked_.fetch_sub(1);
  streams_open_.fetch_sub(1);
  uring_streams_.fetch_sub(1);
  multishot_streams_.fetch_sub(1);
  // Blocks that ever sat in the kernel's provided-buffer group must outlive
  // the armed multishot SQE; park them on the acceptor until destruction.
  std::lock_guard lock(streams_mutex_);
  for (auto& slot : slots) retired_blocks_.push_back(std::move(slot.lease));
}

std::uint64_t StreamAcceptor::io_syscalls() const {
  std::uint64_t total = splice_syscalls_.load();
  std::lock_guard lock(streams_mutex_);
  for (const auto& socket : stream_sockets_) total += socket->syscalls();
  for (const auto& ring : reader_rings_) total += ring->enters();
  return total;
}

void StreamAcceptor::stop() {
  if (!started_ || stopping_.exchange(true)) return;
  listener_.shutdown();
  if (stop_event_fd_ >= 0) {
    // Wake the multishot accept ring out of io_uring_enter.
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(stop_event_fd_, &one, sizeof(one));
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard lock(streams_mutex_);
    for (auto& socket : stream_sockets_) socket->shutdown_both();
  }
  for (auto& thread : reader_threads_)
    if (thread.joinable()) thread.join();
  listener_.close();
  if (stop_event_fd_ >= 0) {
    ::close(stop_event_fd_);
    stop_event_fd_ = -1;
  }
}

}  // namespace automdt::net
