#include "net/stream_pool.hpp"

#include <algorithm>
#include <utility>

#include "net/wire.hpp"

namespace automdt::net {

void encode_wire_chunk(const WireChunk& chunk, std::vector<std::byte>& out,
                       bool traced) {
  out.clear();
  out.reserve(traced ? kWireChunkTracedHeaderBytes : kWireChunkHeaderBytes);
  wire::put_u64(out, chunk.file_id);
  wire::put_u64(out, chunk.offset);
  wire::put_u32(out, chunk.size);
  wire::put_u64(out, chunk.checksum);
  if (traced) {
    wire::put_u64(out, chunk.trace_origin_ns);
    wire::put_u64(out, chunk.trace_send_ns);
  }
}

bool decode_wire_chunk(const std::byte* data, std::size_t size, WireChunk& out,
                       bool traced) {
  const std::size_t header_bytes =
      traced ? kWireChunkTracedHeaderBytes : kWireChunkHeaderBytes;
  if (size < header_bytes) return false;
  wire::Reader r(data, size);
  out.file_id = r.u64();
  out.offset = r.u64();
  out.size = r.u32();
  out.checksum = r.u64();
  if (traced) {
    out.trace_origin_ns = r.u64();
    out.trace_send_ns = r.u64();
  } else {
    out.trace_origin_ns = 0;
    out.trace_send_ns = 0;
  }
  const std::size_t payload_size = size - header_bytes;
  if (payload_size > out.size) return false;  // payload larger than declared
  out.payload.resize(payload_size);
  if (payload_size > 0)
    std::copy_n(r.cursor(), payload_size, out.payload.data());
  return true;
}

StreamPool::StreamPool(StreamPoolConfig config)
    : config_(std::move(config)), active_(config_.max_streams) {
  streams_.reserve(static_cast<std::size_t>(config_.max_streams));
  for (int i = 0; i < config_.max_streams; ++i)
    streams_.push_back(std::make_unique<Stream>());
}

StreamPool::~StreamPool() { close(); }

bool StreamPool::ensure_ready(Stream& stream, int stream_id) {
  if (stream.connected && !stream.failed) return true;
  if (stream.failed) return false;  // a broken stream loses its chunks; the
                                    // session surfaces that as a stall, not
                                    // silent reordering onto other streams
  Connector connector(config_.connector);
  auto socket = connector.connect(config_.host, config_.port);
  if (!socket) {
    stream.failed = true;
    return false;
  }
  stream.socket = std::move(*socket);
  stream.socket.configure(config_.socket);
  stream.writer = std::make_unique<FrameWriter>(stream.socket);
  stream.connected = true;
  stream.parked = false;
  connected_.fetch_add(1);
  std::vector<std::byte> hello;
  wire::put_u32(hello, static_cast<std::uint32_t>(stream_id));
  if (stream.writer->write(FrameType::kStreamHello, hello,
                           config_.io_timeout_s) != SocketStatus::kOk) {
    stream.failed = true;
    return false;
  }
  return true;
}

bool StreamPool::send_chunk(int stream_id, const WireChunk& chunk) {
  return send_chunks(stream_id, &chunk, 1);
}

bool StreamPool::send_chunks(int stream_id, const WireChunk* chunks,
                             std::size_t count) {
  if (count == 0) return true;
  if (closed_.load()) return false;
  if (stream_id < 0 ||
      stream_id >= static_cast<int>(streams_.size())) {
    return false;
  }
  Stream& stream = *streams_[static_cast<std::size_t>(stream_id)];
  std::lock_guard lock(stream.mutex);
  if (closed_.load()) return false;
  if (!ensure_ready(stream, stream_id)) {
    send_failures_.fetch_add(count);
    return false;
  }
  if (stream.parked) {
    // A worker sending on a parked stream means n_n was raised before
    // set_active() got here — resume eagerly so the receiver's gauge agrees.
    if (stream.writer->write(FrameType::kStreamResume, {},
                             config_.io_timeout_s) != SocketStatus::kOk) {
      stream.failed = true;
      send_failures_.fetch_add(count);
      return false;
    }
    stream.parked = false;
  }
  // 3 iovecs per chunk must stay under IOV_MAX; engine batches are far
  // smaller, but split defensively.
  constexpr std::size_t kMaxChunksPerWrite = 256;
  for (std::size_t at = 0; at < count; at += kMaxChunksPerWrite) {
    const std::size_t n = std::min(kMaxChunksPerWrite, count - at);
    if (!send_chunks_locked(stream, chunks + at, n)) {
      send_failures_.fetch_add(count - at);
      return false;
    }
  }
  return true;
}

bool StreamPool::send_chunks_locked(Stream& stream, const WireChunk* chunks,
                                    std::size_t count) {
  // All chunk metadata headers go into one scratch buffer; segment pointers
  // are taken after the buffer stops growing. Traced chunks (non-zero send
  // stamp) carry the 16-byte trace extension and flag their frame.
  stream.scratch.clear();
  stream.scratch.reserve(count * kWireChunkTracedHeaderBytes);
  for (std::size_t i = 0; i < count; ++i) {
    const WireChunk& chunk = chunks[i];
    wire::put_u64(stream.scratch, chunk.file_id);
    wire::put_u64(stream.scratch, chunk.offset);
    wire::put_u32(stream.scratch, chunk.size);
    wire::put_u64(stream.scratch, chunk.checksum);
    if (chunk.trace_send_ns != 0) {
      wire::put_u64(stream.scratch, chunk.trace_origin_ns);
      wire::put_u64(stream.scratch, chunk.trace_send_ns);
    }
  }
  stream.segments.clear();
  stream.segments.reserve(count);
  std::size_t header_at = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const bool traced = chunks[i].trace_send_ns != 0;
    ScatterSegment seg;
    seg.head = stream.scratch.data() + header_at;
    seg.head_size =
        traced ? kWireChunkTracedHeaderBytes : kWireChunkHeaderBytes;
    seg.body = chunks[i].payload.data();
    seg.body_size = chunks[i].payload.size();
    seg.flags = traced ? kFrameFlagTraced : 0;
    header_at += seg.head_size;
    stream.segments.push_back(seg);
  }
  if (stream.writer->write_scatter_batch(FrameType::kChunk,
                                         stream.segments.data(), count,
                                         config_.io_timeout_s) !=
      SocketStatus::kOk) {
    stream.failed = true;
    return false;
  }
  chunks_sent_.fetch_add(count);
  batch_writes_.fetch_add(1);
  return true;
}

void StreamPool::set_active(int n) {
  n = std::clamp(n, 0, static_cast<int>(streams_.size()));
  active_.store(n);
  if (closed_.load()) return;
  for (int i = 0; i < static_cast<int>(streams_.size()); ++i) {
    Stream& stream = *streams_[static_cast<std::size_t>(i)];
    std::lock_guard lock(stream.mutex);
    if (!stream.connected || stream.failed) continue;
    const bool should_park = i >= n;
    if (should_park == stream.parked) continue;
    const FrameType type =
        should_park ? FrameType::kStreamPark : FrameType::kStreamResume;
    if (stream.writer->write(type, {}, config_.io_timeout_s) !=
        SocketStatus::kOk) {
      stream.failed = true;
      continue;
    }
    stream.parked = should_park;
  }
}

void StreamPool::close() {
  if (closed_.exchange(true)) return;
  // shutdown() is safe against concurrent sends; fds are reclaimed when the
  // streams are destroyed (after the engine has joined its workers).
  for (auto& stream : streams_) stream->socket.shutdown_both();
}

StreamAcceptor::StreamAcceptor(StreamAcceptorConfig config,
                               ChunkHandler on_chunk)
    : config_(std::move(config)), on_chunk_(std::move(on_chunk)) {}

StreamAcceptor::~StreamAcceptor() { stop(); }

bool StreamAcceptor::start() {
  auto listener = Listener::open(config_.host, config_.port, config_.backlog);
  if (!listener) return false;
  listener_ = std::move(*listener);
  port_ = listener_.port();
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void StreamAcceptor::accept_loop() {
  while (!stopping_.load()) {
    auto socket = listener_.accept(/*timeout_s=*/0.2);
    if (!socket) continue;  // timeout or shutdown; loop re-checks stopping_
    socket->configure(config_.socket);
    auto shared = std::make_shared<Socket>(std::move(*socket));
    streams_accepted_.fetch_add(1);
    streams_open_.fetch_add(1);
    std::lock_guard lock(streams_mutex_);
    if (stopping_.load()) {
      streams_open_.fetch_sub(1);
      shared->shutdown_both();
      return;
    }
    stream_sockets_.push_back(shared);
    reader_threads_.emplace_back(
        [this, shared = std::move(shared)] { reader_loop(shared); });
  }
}

void StreamAcceptor::reader_loop(std::shared_ptr<Socket> socket) {
  // Buffered: one recv pulls a whole coalesced batch of frames; decoding
  // back-to-back frames from the buffer costs no further syscalls.
  BufferedFrameReader reader(*socket, config_.max_payload_bytes);
  Frame frame;
  WireChunk chunk;
  bool parked = false;
  for (;;) {
    const FrameError err = reader.read(frame, /*timeout_s=*/-1.0);
    if (err == FrameError::kClosed) break;  // orderly stream end
    if (err != FrameError::kNone) {
      // Corrupt or truncated stream: count it and drop the connection —
      // a data channel that fails validation cannot be resynchronized.
      frame_errors_.fetch_add(1);
      socket->shutdown_both();
      break;
    }
    switch (frame.type) {
      case FrameType::kStreamHello:
        break;  // stream identity is implicit in the connection
      case FrameType::kStreamPark:
        if (!parked) {
          parked = true;
          streams_parked_.fetch_add(1);
        }
        break;
      case FrameType::kStreamResume:
        if (parked) {
          parked = false;
          streams_parked_.fetch_sub(1);
        }
        break;
      case FrameType::kChunk: {
        if (config_.payload_pool)
          chunk.payload = config_.payload_pool->acquire(0);
        if (!decode_wire_chunk(frame.payload.data(), frame.payload.size(),
                               chunk,
                               (frame.flags & kFrameFlagTraced) != 0)) {
          frame_errors_.fetch_add(1);
          socket->shutdown_both();
          goto done;
        }
        chunks_received_.fetch_add(1);
        if (!on_chunk_(std::move(chunk))) goto done;  // downstream closed
        chunk = WireChunk{};
        break;
      }
      default:
        break;  // ping/pong and future types are ignorable on this plane
    }
  }
done:
  if (parked) streams_parked_.fetch_sub(1);
  streams_open_.fetch_sub(1);
}

void StreamAcceptor::stop() {
  if (!started_ || stopping_.exchange(true)) return;
  listener_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard lock(streams_mutex_);
    for (auto& socket : stream_sockets_) socket->shutdown_both();
  }
  for (auto& thread : reader_threads_)
    if (thread.joinable()) thread.join();
  listener_.close();
}

}  // namespace automdt::net
