#include "net/stream_pool.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/checksum.hpp"
#include "net/wire.hpp"

namespace automdt::net {

void encode_wire_chunk(const WireChunk& chunk, std::vector<std::byte>& out,
                       bool traced) {
  out.clear();
  out.reserve(traced ? kWireChunkTracedHeaderBytes : kWireChunkHeaderBytes);
  wire::put_u64(out, chunk.file_id);
  wire::put_u64(out, chunk.offset);
  wire::put_u32(out, chunk.size);
  wire::put_u64(out, chunk.checksum);
  if (traced) {
    wire::put_u64(out, chunk.trace_origin_ns);
    wire::put_u64(out, chunk.trace_send_ns);
  }
}

bool decode_wire_chunk(const std::byte* data, std::size_t size, WireChunk& out,
                       bool traced) {
  const std::size_t header_bytes =
      traced ? kWireChunkTracedHeaderBytes : kWireChunkHeaderBytes;
  if (size < header_bytes) return false;
  wire::Reader r(data, size);
  out.file_id = r.u64();
  out.offset = r.u64();
  out.size = r.u32();
  out.checksum = r.u64();
  if (traced) {
    out.trace_origin_ns = r.u64();
    out.trace_send_ns = r.u64();
  } else {
    out.trace_origin_ns = 0;
    out.trace_send_ns = 0;
  }
  const std::size_t payload_size = size - header_bytes;
  if (payload_size > out.size) return false;  // payload larger than declared
  out.payload.resize(payload_size);
  if (payload_size > 0)
    std::copy_n(r.cursor(), payload_size, out.payload.data());
  return true;
}

namespace {

/// In-place wire-chunk decode: fills every metadata field of `out` and
/// reports where the payload starts, without touching the payload bytes —
/// the leased receive path then carves them out as a subspan. Mirrors
/// decode_wire_chunk's validation exactly.
bool decode_wire_chunk_meta(const std::byte* data, std::size_t size,
                            bool traced, WireChunk& out,
                            std::size_t& payload_at) {
  const std::size_t header_bytes =
      traced ? kWireChunkTracedHeaderBytes : kWireChunkHeaderBytes;
  if (size < header_bytes) return false;
  wire::Reader r(data, size);
  out.file_id = r.u64();
  out.offset = r.u64();
  out.size = r.u32();
  out.checksum = r.u64();
  if (traced) {
    out.trace_origin_ns = r.u64();
    out.trace_send_ns = r.u64();
  } else {
    out.trace_origin_ns = 0;
    out.trace_send_ns = 0;
  }
  if (size - header_bytes > out.size) return false;  // larger than declared
  payload_at = header_bytes;
  return true;
}

}  // namespace

StreamPool::StreamPool(StreamPoolConfig config)
    : config_(std::move(config)), active_(config_.max_streams) {
  streams_.reserve(static_cast<std::size_t>(config_.max_streams));
  for (int i = 0; i < config_.max_streams; ++i)
    streams_.push_back(std::make_unique<Stream>());
}

StreamPool::~StreamPool() { close(); }

bool StreamPool::ensure_ready(Stream& stream, int stream_id) {
  if (stream.connected && !stream.failed) return true;
  if (stream.failed) return false;  // a broken stream loses its chunks; the
                                    // session surfaces that as a stall, not
                                    // silent reordering onto other streams
  Connector connector(config_.connector);
  auto socket = connector.connect(config_.host, config_.port);
  if (!socket) {
    stream.failed = true;
    return false;
  }
  stream.socket = std::move(*socket);
  stream.socket.configure(config_.socket);
  stream.writer = std::make_unique<FrameWriter>(stream.socket);
  stream.connected = true;
  stream.parked = false;
  connected_.fetch_add(1);
  if (config_.use_uring && !stream.ring_tried) {
    // One ring per stream (rings are single-threaded); a failed probe or
    // setup just leaves the stream on the sendmsg path.
    stream.ring_tried = true;
    if (UringRing::available()) {
      stream.ring = UringRing::create(8);
      if (stream.ring) uring_streams_.fetch_add(1);
    }
  }
  std::vector<std::byte> hello;
  wire::put_u32(hello, static_cast<std::uint32_t>(stream_id));
  if (stream.writer->write(FrameType::kStreamHello, hello,
                           config_.io_timeout_s) != SocketStatus::kOk) {
    stream.failed = true;
    return false;
  }
  return true;
}

bool StreamPool::send_chunk(int stream_id, const WireChunk& chunk) {
  return send_chunks(stream_id, &chunk, 1);
}

bool StreamPool::send_chunks(int stream_id, const WireChunk* chunks,
                             std::size_t count) {
  if (count == 0) return true;
  if (closed_.load()) return false;
  if (stream_id < 0 ||
      stream_id >= static_cast<int>(streams_.size())) {
    return false;
  }
  Stream& stream = *streams_[static_cast<std::size_t>(stream_id)];
  std::lock_guard lock(stream.mutex);
  if (closed_.load()) return false;
  if (!ensure_ready(stream, stream_id)) {
    send_failures_.fetch_add(count);
    return false;
  }
  if (stream.parked) {
    // A worker sending on a parked stream means n_n was raised before
    // set_active() got here — resume eagerly so the receiver's gauge agrees.
    if (stream.writer->write(FrameType::kStreamResume, {},
                             config_.io_timeout_s) != SocketStatus::kOk) {
      stream.failed = true;
      send_failures_.fetch_add(count);
      return false;
    }
    stream.parked = false;
  }
  // 3 iovecs per chunk must stay under IOV_MAX; engine batches are far
  // smaller, but split defensively.
  constexpr std::size_t kMaxChunksPerWrite = 256;
  for (std::size_t at = 0; at < count; at += kMaxChunksPerWrite) {
    const std::size_t n = std::min(kMaxChunksPerWrite, count - at);
    if (!send_chunks_locked(stream, chunks + at, n)) {
      send_failures_.fetch_add(count - at);
      return false;
    }
  }
  return true;
}

bool StreamPool::send_chunks_locked(Stream& stream, const WireChunk* chunks,
                                    std::size_t count) {
  // All chunk metadata headers go into one scratch buffer; segment pointers
  // are taken after the buffer stops growing. Traced chunks (non-zero send
  // stamp) carry the 16-byte trace extension and flag their frame.
  stream.scratch.clear();
  stream.scratch.reserve(count * kWireChunkTracedHeaderBytes);
  for (std::size_t i = 0; i < count; ++i) {
    const WireChunk& chunk = chunks[i];
    wire::put_u64(stream.scratch, chunk.file_id);
    wire::put_u64(stream.scratch, chunk.offset);
    wire::put_u32(stream.scratch, chunk.size);
    wire::put_u64(stream.scratch, chunk.checksum);
    if (chunk.trace_send_ns != 0) {
      wire::put_u64(stream.scratch, chunk.trace_origin_ns);
      wire::put_u64(stream.scratch, chunk.trace_send_ns);
    }
  }
  stream.segments.clear();
  stream.segments.reserve(count);
  std::size_t header_at = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const bool traced = chunks[i].trace_send_ns != 0;
    ScatterSegment seg;
    seg.head = stream.scratch.data() + header_at;
    seg.head_size =
        traced ? kWireChunkTracedHeaderBytes : kWireChunkHeaderBytes;
    seg.body = chunks[i].payload_data();
    seg.body_size = chunks[i].payload_size();
    seg.flags = traced ? kFrameFlagTraced : 0;
    seg.session_id = chunks[i].session_id != 0 ? chunks[i].session_id
                                               : config_.session_id;
    header_at += seg.head_size;
    stream.segments.push_back(seg);
  }
  if (stream.ring) {
    const std::size_t total = stream.writer->build_scatter_batch(
        FrameType::kChunk, stream.segments.data(), count, stream.iov);
    if (!uring_send_locked(stream, total)) return false;
  } else if (stream.writer->write_scatter_batch(FrameType::kChunk,
                                                stream.segments.data(), count,
                                                config_.io_timeout_s) !=
             SocketStatus::kOk) {
    stream.failed = true;
    return false;
  }
  chunks_sent_.fetch_add(count);
  batch_writes_.fetch_add(1);
  return true;
}

bool StreamPool::uring_send_locked(Stream& stream, std::size_t total) {
  iovec* iov = stream.iov.data();
  std::size_t iovcnt = stream.iov.size();
  std::size_t done = 0;
  while (done < total) {
    bool punt = false;
    if (!stream.ring->prep_writev(stream.socket.fd(), iov,
                                  static_cast<unsigned>(iovcnt), 1)) {
      punt = true;  // SQ full (cannot happen at one SQE per batch) — degrade
    } else if (stream.ring->submit_and_wait(1, stream.cqes) <= 0 ||
               stream.cqes.empty()) {
      // Ring-level failure: retire the ring for good, finish via sendmsg.
      stream.retired_ring_enters += stream.ring->enters();
      stream.ring.reset();
      uring_streams_.fetch_sub(1);
      punt = true;
    } else {
      const std::int32_t res = stream.cqes.front().res;
      if (res > 0) {
        done += static_cast<std::size_t>(res);
        // Partial gathered write: advance the iovec window in place, exactly
        // like Socket::write_vec does between sendmsg calls.
        std::size_t left = static_cast<std::size_t>(res);
        while (iovcnt > 0 && left >= iov->iov_len) {
          left -= iov->iov_len;
          ++iov;
          --iovcnt;
        }
        if (iovcnt > 0 && left > 0) {
          iov->iov_base = static_cast<std::byte*>(iov->iov_base) + left;
          iov->iov_len -= left;
        }
        continue;
      }
      if (res == -EINTR) continue;
      // -EAGAIN (no fast-poll?) or a zero-byte writev: let write_vec's
      // poll-driven loop wait for the socket properly instead of spinning.
      if (res == -EAGAIN || res == 0) {
        punt = true;
      } else {
        stream.failed = true;
        return false;
      }
    }
    if (punt) {
      if (stream.socket.write_vec(iov, static_cast<int>(iovcnt),
                                  config_.io_timeout_s) != SocketStatus::kOk) {
        stream.failed = true;
        return false;
      }
      return true;
    }
  }
  return true;
}

bool StreamPool::send_chunk_file(int stream_id, const WireChunk& meta,
                                 int file_fd) {
  if (closed_.load()) return false;
  if (stream_id < 0 || stream_id >= static_cast<int>(streams_.size()))
    return false;
  Stream& stream = *streams_[static_cast<std::size_t>(stream_id)];
  std::lock_guard lock(stream.mutex);
  if (closed_.load()) return false;
  if (!ensure_ready(stream, stream_id)) {
    send_failures_.fetch_add(1);
    return false;
  }
  if (stream.parked) {
    if (stream.writer->write(FrameType::kStreamResume, {},
                             config_.io_timeout_s) != SocketStatus::kOk) {
      stream.failed = true;
      send_failures_.fetch_add(1);
      return false;
    }
    stream.parked = false;
  }
  const bool traced = meta.trace_send_ns != 0;
  stream.scratch.clear();
  wire::put_u64(stream.scratch, meta.file_id);
  wire::put_u64(stream.scratch, meta.offset);
  wire::put_u32(stream.scratch, meta.size);
  wire::put_u64(stream.scratch, meta.checksum);
  if (traced) {
    wire::put_u64(stream.scratch, meta.trace_origin_ns);
    wire::put_u64(stream.scratch, meta.trace_send_ns);
  }
  if (stream.writer->write_file(FrameType::kChunk, stream.scratch, file_fd,
                                meta.offset, meta.size, config_.io_timeout_s,
                                traced ? kFrameFlagTraced : 0,
                                meta.session_id != 0 ? meta.session_id
                                                     : config_.session_id) !=
      SocketStatus::kOk) {
    stream.failed = true;
    send_failures_.fetch_add(1);
    return false;
  }
  chunks_sent_.fetch_add(1);
  batch_writes_.fetch_add(1);
  return true;
}

std::uint64_t StreamPool::io_syscalls() const {
  std::uint64_t total = 0;
  for (const auto& entry : streams_) {
    Stream& stream = *entry;
    std::lock_guard lock(stream.mutex);
    total += stream.socket.syscalls() + stream.retired_ring_enters;
    if (stream.ring) total += stream.ring->enters();
  }
  return total;
}

void StreamPool::set_active(int n) {
  n = std::clamp(n, 0, static_cast<int>(streams_.size()));
  active_.store(n);
  if (closed_.load()) return;
  for (int i = 0; i < static_cast<int>(streams_.size()); ++i) {
    Stream& stream = *streams_[static_cast<std::size_t>(i)];
    std::lock_guard lock(stream.mutex);
    if (!stream.connected || stream.failed) continue;
    const bool should_park = i >= n;
    if (should_park == stream.parked) continue;
    const FrameType type =
        should_park ? FrameType::kStreamPark : FrameType::kStreamResume;
    if (stream.writer->write(type, {}, config_.io_timeout_s) !=
        SocketStatus::kOk) {
      stream.failed = true;
      continue;
    }
    stream.parked = should_park;
  }
}

void StreamPool::close() {
  if (closed_.exchange(true)) return;
  // shutdown() is safe against concurrent sends; fds are reclaimed when the
  // streams are destroyed (after the engine has joined its workers).
  for (auto& stream : streams_) stream->socket.shutdown_both();
}

StreamAcceptor::StreamAcceptor(StreamAcceptorConfig config,
                               ChunkHandler on_chunk)
    : config_(std::move(config)), on_chunk_(std::move(on_chunk)) {}

StreamAcceptor::~StreamAcceptor() { stop(); }

bool StreamAcceptor::start() {
  auto listener = Listener::open(config_.host, config_.port, config_.backlog);
  if (!listener) return false;
  listener_ = std::move(*listener);
  port_ = listener_.port();
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void StreamAcceptor::accept_loop() {
  while (!stopping_.load()) {
    auto socket = listener_.accept(/*timeout_s=*/0.2);
    if (!socket) continue;  // timeout or shutdown; loop re-checks stopping_
    socket->configure(config_.socket);
    auto shared = std::make_shared<Socket>(std::move(*socket));
    streams_accepted_.fetch_add(1);
    streams_open_.fetch_add(1);
    std::lock_guard lock(streams_mutex_);
    if (stopping_.load()) {
      streams_open_.fetch_sub(1);
      shared->shutdown_both();
      return;
    }
    stream_sockets_.push_back(shared);
    reader_threads_.emplace_back([this, shared = std::move(shared)] {
      if (config_.lease_pool != nullptr) {
        reader_loop_leased(shared);
      } else {
        reader_loop(shared);
      }
    });
  }
}

void StreamAcceptor::reader_loop(std::shared_ptr<Socket> socket) {
  // Buffered: one recv pulls a whole coalesced batch of frames; decoding
  // back-to-back frames from the buffer costs no further syscalls.
  BufferedFrameReader reader(*socket, config_.max_payload_bytes);
  Frame frame;
  WireChunk chunk;
  bool parked = false;
  for (;;) {
    const FrameError err = reader.read(frame, /*timeout_s=*/-1.0);
    if (err == FrameError::kClosed) break;  // orderly stream end
    if (err != FrameError::kNone) {
      // Corrupt or truncated stream: count it and drop the connection —
      // a data channel that fails validation cannot be resynchronized.
      frame_errors_.fetch_add(1);
      socket->shutdown_both();
      break;
    }
    switch (frame.type) {
      case FrameType::kStreamHello:
        break;  // stream identity is implicit in the connection
      case FrameType::kStreamPark:
        if (!parked) {
          parked = true;
          streams_parked_.fetch_add(1);
        }
        break;
      case FrameType::kStreamResume:
        if (parked) {
          parked = false;
          streams_parked_.fetch_sub(1);
        }
        break;
      case FrameType::kChunk: {
        if (config_.payload_pool)
          chunk.payload = config_.payload_pool->acquire(0);
        if (!decode_wire_chunk(frame.payload.data(), frame.payload.size(),
                               chunk,
                               (frame.flags & kFrameFlagTraced) != 0)) {
          frame_errors_.fetch_add(1);
          socket->shutdown_both();
          goto done;
        }
        chunk.session_id = frame.session_id;
        chunks_received_.fetch_add(1);
        // Copied path: recv buffer -> Frame::payload -> WireChunk::payload.
        payload_copies_.fetch_add(2);
        if (!on_chunk_(std::move(chunk))) goto done;  // downstream closed
        chunk = WireChunk{};
        break;
      }
      default:
        break;  // ping/pong and future types are ignorable on this plane
    }
  }
done:
  if (parked) streams_parked_.fetch_sub(1);
  streams_open_.fetch_sub(1);
}

void StreamAcceptor::reader_loop_leased(std::shared_ptr<Socket> socket) {
  ArenaPool& pool = *config_.lease_pool;
  const std::size_t cap = pool.block_bytes();

  // Optional io_uring receive: one ring per reader; the arena's stable block
  // table is registered once so recvs into arena-backed blocks can go out as
  // READ_FIXED SQEs.
  std::shared_ptr<UringRing> ring;
  if (config_.use_uring && UringRing::available()) {
    if (auto created = UringRing::create(8)) {
      created->register_buffers(pool.registered_iovecs(),
                                static_cast<unsigned>(pool.block_count()));
      ring = std::move(created);
      std::lock_guard lock(streams_mutex_);
      reader_rings_.push_back(ring);
      uring_streams_.fetch_add(1);
    }
  }
  std::vector<UringRing::Completion> cqes;

  // One recv into `dst`: io_uring READ (fixed when the block is registered),
  // degrading transparently to the classic poll+recv pair.
  auto recv_some = [&](std::byte* dst, std::size_t room, std::size_t* got,
                       std::uint32_t buf_index) -> SocketStatus {
    while (ring) {
      const auto len =
          static_cast<unsigned>(std::min<std::size_t>(room, 1u << 30));
      const bool prepped =
          ring->buffers_registered() && buf_index != BufferLease::kUnregistered
              ? ring->prep_read_fixed(socket->fd(), dst, len, 0, buf_index, 1)
              : ring->prep_read(socket->fd(), dst, len, 0, 1);
      if (!prepped || ring->submit_and_wait(1, cqes) <= 0 || cqes.empty()) {
        // Ring-level failure: this reader goes classic for good. The shared
        // handle in reader_rings_ keeps enters() visible to io_syscalls().
        uring_streams_.fetch_sub(1);
        ring.reset();
        break;
      }
      const std::int32_t res = cqes.front().res;
      if (res > 0) {
        *got = static_cast<std::size_t>(res);
        return SocketStatus::kOk;
      }
      if (res == 0) return SocketStatus::kClosed;
      if (res == -EINTR) continue;
      if (res == -EAGAIN) break;  // no fast poll: this one recv goes classic
      return SocketStatus::kError;
    }
    return socket->read_some(dst, room, /*timeout_s=*/-1.0, got);
  };

  BufferLease block = pool.acquire();
  std::size_t begin = 0;
  std::size_t end = 0;
  WireChunk chunk;
  bool parked = false;
  if (cap < kFrameHeaderBytes) {  // pathological pool; nothing can ever parse
    frame_errors_.fetch_add(1);
    socket->shutdown_both();
    goto done;
  }
  for (;;) {
    // 1) Slice a complete frame straight out of the block, in place.
    FrameHeaderView hdr;
    const FrameError pe = parse_frame_header(
        block.data() + begin, end - begin, hdr, config_.max_payload_bytes);
    if (pe != FrameError::kNone && pe != FrameError::kNeedMoreData) {
      frame_errors_.fetch_add(1);
      socket->shutdown_both();
      goto done;
    }
    if (pe == FrameError::kNone &&
        end - begin >= hdr.header_bytes + hdr.length) {
      const std::byte* payload = block.data() + begin + hdr.header_bytes;
      if ((hdr.flags & kFrameFlagUnchecked) == 0 &&
          fnv1a(payload, hdr.length, hdr.checksum_seed) != hdr.checksum) {
        frame_errors_.fetch_add(1);
        socket->shutdown_both();
        goto done;
      }
      switch (hdr.type) {
        case FrameType::kStreamHello:
          break;
        case FrameType::kStreamPark:
          if (!parked) {
            parked = true;
            streams_parked_.fetch_add(1);
          }
          break;
        case FrameType::kStreamResume:
          if (parked) {
            parked = false;
            streams_parked_.fetch_sub(1);
          }
          break;
        case FrameType::kChunk: {
          std::size_t payload_at = 0;
          if (!decode_wire_chunk_meta(payload, hdr.length,
                                      (hdr.flags & kFrameFlagTraced) != 0,
                                      chunk, payload_at)) {
            frame_errors_.fetch_add(1);
            socket->shutdown_both();
            goto done;
          }
          // Zero-copy hand-off: the payload stays exactly where recv wrote
          // it and the consumer gets a refcounted view of those bytes.
          chunk.session_id = hdr.session_id;
          chunk.payload.clear();
          chunk.lease =
              block.subspan(begin + hdr.header_bytes + payload_at,
                            hdr.length - payload_at);
          chunks_received_.fetch_add(1);
          if (!on_chunk_(std::move(chunk))) goto done;  // downstream closed
          chunk = WireChunk{};
          break;
        }
        default:
          break;  // ping/pong and future types are ignorable on this plane
      }
      begin += hdr.header_bytes + hdr.length;
      continue;
    }

    // 2) Frame incomplete. Carved payload leases forbid rewinding a block,
    // so a frame that cannot finish in the tail moves its partial bytes to a
    // fresh block (the one counted copy a boundary-spanning frame pays).
    // With an incomplete header, demand the session-extended size — a
    // 4-byte overshoot only ever costs one extra boundary move, and step 3
    // recvs whatever is available regardless.
    const std::size_t need = pe == FrameError::kNone
                                 ? hdr.header_bytes + hdr.length
                                 : kFrameHeaderBytes + kFrameSessionExtBytes;
    if (need > cap) {
      // Frame larger than an arena block (foreign sender): assemble this one
      // in a one-shot heap buffer — the copied path — and keep streaming.
      const std::size_t partial = end - begin;
      std::vector<std::byte> big(need);
      std::memcpy(big.data(), block.data() + begin, partial);
      begin = end;
      if (socket->read_exact(big.data() + partial, need - partial,
                             /*timeout_s=*/-1.0) != SocketStatus::kOk) {
        frame_errors_.fetch_add(1);
        socket->shutdown_both();
        goto done;
      }
      Frame frame;
      if (decode_frame(big.data(), big.size(), frame,
                       config_.max_payload_bytes)
              .error != FrameError::kNone) {
        frame_errors_.fetch_add(1);
        socket->shutdown_both();
        goto done;
      }
      if (frame.type == FrameType::kChunk) {
        if (!decode_wire_chunk(frame.payload.data(), frame.payload.size(),
                               chunk,
                               (frame.flags & kFrameFlagTraced) != 0)) {
          frame_errors_.fetch_add(1);
          socket->shutdown_both();
          goto done;
        }
        chunk.session_id = frame.session_id;
        chunks_received_.fetch_add(1);
        payload_copies_.fetch_add(2);
        if (!on_chunk_(std::move(chunk))) goto done;
        chunk = WireChunk{};
      }
      continue;
    }
    if (begin + need > cap) {
      BufferLease next = pool.acquire();
      const std::size_t partial = end - begin;
      if (partial > 0) {
        std::memcpy(next.data(), block.data() + begin, partial);
        payload_copies_.fetch_add(1);  // the block-boundary-spanning frame
      }
      block = std::move(next);  // old block recycles once its leases drop
      begin = 0;
      end = partial;
    }

    // 3) Pull more bytes into the tail.
    std::size_t got = 0;
    const SocketStatus s = recv_some(block.data() + end, cap - end, &got,
                                     block.registered_index());
    if (s == SocketStatus::kOk) {
      end += got;
      continue;
    }
    if (s == SocketStatus::kClosed && begin == end) goto done;  // orderly EOF
    // Truncated mid-frame or errno-level failure: unrecoverable stream.
    frame_errors_.fetch_add(1);
    socket->shutdown_both();
    goto done;
  }
done:
  if (parked) streams_parked_.fetch_sub(1);
  streams_open_.fetch_sub(1);
  if (ring) uring_streams_.fetch_sub(1);
}

std::uint64_t StreamAcceptor::io_syscalls() const {
  std::uint64_t total = 0;
  std::lock_guard lock(streams_mutex_);
  for (const auto& socket : stream_sockets_) total += socket->syscalls();
  for (const auto& ring : reader_rings_) total += ring->enters();
  return total;
}

void StreamAcceptor::stop() {
  if (!started_ || stopping_.exchange(true)) return;
  listener_.shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard lock(streams_mutex_);
    for (auto& socket : stream_sockets_) socket->shutdown_both();
  }
  for (auto& thread : reader_threads_)
    if (thread.joinable()) thread.join();
  listener_.close();
}

}  // namespace automdt::net
