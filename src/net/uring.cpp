#include "net/uring.hpp"

#include <cstdlib>

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define AUTOMDT_HAS_URING 1
#endif

#ifdef AUTOMDT_HAS_URING

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace automdt::net {
namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

int sys_io_uring_register(int fd, unsigned opcode, const void* arg,
                          unsigned nr_args) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

bool kernel_supports_uring() {
  io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  const int fd = sys_io_uring_setup(4, &params);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

bool disabled_by_env() {
  const char* v = std::getenv("AUTOMDT_DISABLE_URING");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

bool multishot_disabled_by_env() {
  const char* v = std::getenv("AUTOMDT_DISABLE_URING_MULTISHOT");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

// The installed <linux/io_uring.h> may predate the multishot ABI, so every
// constant the receive plane needs is spelled out here (values are kernel
// ABI, frozen forever). Opcodes are plain integers rather than enum members
// for the same reason.
constexpr std::uint8_t kOpAccept = 13;   // IORING_OP_ACCEPT
constexpr std::uint8_t kOpRecv = 27;     // IORING_OP_RECV
constexpr std::uint16_t kAcceptMultishot = 1u << 0;  // IORING_ACCEPT_MULTISHOT
constexpr std::uint16_t kRecvMultishot = 1u << 1;    // IORING_RECV_MULTISHOT
constexpr std::uint8_t kSqeBufferSelect = 1u << 5;   // IOSQE_BUFFER_SELECT
constexpr unsigned kRegisterPbufRing = 22;    // IORING_REGISTER_PBUF_RING
constexpr unsigned kUnregisterPbufRing = 23;  // IORING_UNREGISTER_PBUF_RING

// struct io_uring_buf / io_uring_buf_reg mirrors. The tail the kernel
// consumes from lives in entry 0's resv slot (io_uring_buf_ring ABI).
struct PbufRingEntry {
  std::uint64_t addr;
  std::uint32_t len;
  std::uint16_t bid;
  std::uint16_t resv;
};
static_assert(sizeof(PbufRingEntry) == 16);

struct PbufRingReg {
  std::uint64_t ring_addr;
  std::uint32_t ring_entries;
  std::uint16_t bgid;
  std::uint16_t flags;
  std::uint64_t resv[3];
};

}  // namespace

bool UringRing::available() {
  static const bool kernel_ok = kernel_supports_uring();
  return kernel_ok && !disabled_by_env();
}

bool UringRing::multishot_available() {
  // Probe once: a kernel that accepts IORING_REGISTER_PBUF_RING (5.19+) is
  // close enough to the multishot plane (6.0+) that the remaining gap is
  // covered by the callers' first-completion -EINVAL fallback.
  static const bool kernel_ok = [] {
    if (!kernel_supports_uring()) return false;
    io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    const int fd = sys_io_uring_setup(4, &params);
    if (fd < 0) return false;
    void* mem = ::mmap(nullptr, 8 * sizeof(PbufRingEntry),
                       PROT_READ | PROT_WRITE, MAP_ANONYMOUS | MAP_PRIVATE,
                       -1, 0);
    bool ok = false;
    if (mem != MAP_FAILED) {
      PbufRingReg reg;
      std::memset(&reg, 0, sizeof(reg));
      reg.ring_addr = reinterpret_cast<std::uint64_t>(mem);
      reg.ring_entries = 8;
      reg.bgid = 0;
      ok = sys_io_uring_register(fd, kRegisterPbufRing, &reg, 1) == 0;
      ::munmap(mem, 8 * sizeof(PbufRingEntry));
    }
    ::close(fd);
    return ok;
  }();
  return kernel_ok && !disabled_by_env() && !multishot_disabled_by_env();
}

std::unique_ptr<UringRing> UringRing::create(unsigned entries) {
  if (!available() || entries == 0) return nullptr;
  io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  const int fd = sys_io_uring_setup(entries, &params);
  if (fd < 0) return nullptr;

  std::unique_ptr<UringRing> ring(new UringRing);
  ring->ring_fd_ = fd;
  ring->sq_entries_ = params.sq_entries;

  std::size_t sq_bytes =
      params.sq_off.array + params.sq_entries * sizeof(unsigned);
  std::size_t cq_bytes =
      params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  const bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap) sq_bytes = cq_bytes = std::max(sq_bytes, cq_bytes);

  ring->sq_ring_bytes_ = sq_bytes;
  ring->sq_ring_ = ::mmap(nullptr, sq_bytes, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING);
  if (ring->sq_ring_ == MAP_FAILED) {
    ring->sq_ring_ = nullptr;
    return nullptr;
  }
  if (single_mmap) {
    ring->cq_ring_ = ring->sq_ring_;
  } else {
    ring->cq_ring_bytes_ = cq_bytes;
    ring->cq_ring_ = ::mmap(nullptr, cq_bytes, PROT_READ | PROT_WRITE,
                            MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_CQ_RING);
    if (ring->cq_ring_ == MAP_FAILED) {
      ring->cq_ring_ = nullptr;
      return nullptr;
    }
  }
  ring->sqes_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
  ring->sqes_ = ::mmap(nullptr, ring->sqes_bytes_, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES);
  if (ring->sqes_ == MAP_FAILED) {
    ring->sqes_ = nullptr;
    return nullptr;
  }

  auto* sq = static_cast<std::byte*>(ring->sq_ring_);
  ring->sq_khead_ = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
  ring->sq_ktail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
  ring->sq_kmask_ = reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
  ring->sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
  auto* cq = static_cast<std::byte*>(ring->cq_ring_);
  ring->cq_khead_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
  ring->cq_ktail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
  ring->cq_kmask_ = reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
  ring->cqes_ = cq + params.cq_off.cqes;
  ring->sq_tail_local_ = *ring->sq_ktail_;
  return ring;
}

UringRing::~UringRing() {
  if (buf_ring_ != nullptr && ring_fd_ >= 0) {
    PbufRingReg reg;
    std::memset(&reg, 0, sizeof(reg));
    reg.bgid = buf_ring_bgid_;
    sys_io_uring_register(ring_fd_, kUnregisterPbufRing, &reg, 1);
  }
  if (sqes_ != nullptr) ::munmap(sqes_, sqes_bytes_);
  if (cq_ring_ != nullptr && cq_ring_ != sq_ring_)
    ::munmap(cq_ring_, cq_ring_bytes_);
  if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_bytes_);
  if (ring_fd_ >= 0) ::close(ring_fd_);
  if (buf_ring_ != nullptr) ::munmap(buf_ring_, buf_ring_bytes_);
}

bool UringRing::setup_buf_ring(unsigned entries, unsigned short bgid) {
  if (ring_fd_ < 0 || buf_ring_ != nullptr || entries == 0 ||
      (entries & (entries - 1)) != 0) {
    return false;
  }
  const std::size_t bytes = entries * sizeof(PbufRingEntry);
  void* mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_ANONYMOUS | MAP_PRIVATE, -1, 0);
  if (mem == MAP_FAILED) return false;
  std::memset(mem, 0, bytes);
  PbufRingReg reg;
  std::memset(&reg, 0, sizeof(reg));
  reg.ring_addr = reinterpret_cast<std::uint64_t>(mem);
  reg.ring_entries = entries;
  reg.bgid = bgid;
  if (sys_io_uring_register(ring_fd_, kRegisterPbufRing, &reg, 1) != 0) {
    ::munmap(mem, bytes);
    return false;
  }
  buf_ring_ = mem;
  buf_ring_bytes_ = bytes;
  buf_ring_entries_ = entries;
  buf_ring_tail_local_ = 0;
  buf_ring_bgid_ = bgid;
  return true;
}

void UringRing::provide_buffer(void* addr, unsigned len, unsigned short bid) {
  if (buf_ring_ == nullptr) return;
  auto* ring = static_cast<PbufRingEntry*>(buf_ring_);
  PbufRingEntry& e = ring[buf_ring_tail_local_ & (buf_ring_entries_ - 1)];
  e.addr = reinterpret_cast<std::uint64_t>(addr);
  e.len = len;
  e.bid = bid;
  // Entry 0's resv slot doubles as the ring tail (kernel ABI) — never write
  // e.resv directly, publish through the release store below only.
  ++buf_ring_tail_local_;
  __atomic_store_n(&ring[0].resv,
                   static_cast<std::uint16_t>(buf_ring_tail_local_),
                   __ATOMIC_RELEASE);
}

bool UringRing::prep_recv_multishot(int fd, std::uint64_t user_data) {
  if (buf_ring_ == nullptr) return false;
  auto* sqe = static_cast<io_uring_sqe*>(
      prep(fd, kOpRecv, nullptr, 0, 0, user_data));
  if (sqe == nullptr) return false;
  sqe->ioprio = kRecvMultishot;
  sqe->flags |= kSqeBufferSelect;
  sqe->buf_index = buf_ring_bgid_;  // union with buf_group
  return true;
}

bool UringRing::prep_accept_multishot(int fd, std::uint64_t user_data) {
  auto* sqe = static_cast<io_uring_sqe*>(
      prep(fd, kOpAccept, nullptr, 0, 0, user_data));
  if (sqe == nullptr) return false;
  sqe->ioprio = kAcceptMultishot;
  sqe->accept_flags = SOCK_CLOEXEC;
  return true;
}

bool UringRing::register_buffers(const iovec* iovecs, unsigned count) {
  if (ring_fd_ < 0 || count == 0) return false;
  if (sys_io_uring_register(ring_fd_, IORING_REGISTER_BUFFERS, iovecs,
                            count) != 0) {
    return false;
  }
  buffers_registered_ = true;
  return true;
}

void* UringRing::prep(int fd, std::uint8_t opcode, const void* addr,
                      unsigned len, std::uint64_t offset,
                      std::uint64_t user_data) {
  const unsigned head =
      __atomic_load_n(sq_khead_, __ATOMIC_ACQUIRE);
  if (sq_tail_local_ - head >= sq_entries_) return nullptr;  // SQ full
  const unsigned idx = sq_tail_local_ & *sq_kmask_;
  auto* sqe = static_cast<io_uring_sqe*>(sqes_) + idx;
  std::memset(sqe, 0, sizeof(*sqe));
  sqe->opcode = opcode;
  sqe->fd = fd;
  sqe->addr = reinterpret_cast<std::uint64_t>(addr);
  sqe->len = len;
  sqe->off = offset;
  sqe->user_data = user_data;
  sq_array_[idx] = idx;
  ++sq_tail_local_;
  ++pending_;
  return sqe;
}

bool UringRing::prep_read(int fd, void* buf, unsigned len,
                          std::uint64_t offset, std::uint64_t user_data) {
  return prep(fd, IORING_OP_READ, buf, len, offset, user_data) != nullptr;
}

bool UringRing::prep_write(int fd, const void* buf, unsigned len,
                           std::uint64_t offset, std::uint64_t user_data) {
  return prep(fd, IORING_OP_WRITE, buf, len, offset, user_data) != nullptr;
}

bool UringRing::prep_read_fixed(int fd, void* buf, unsigned len,
                                std::uint64_t offset, unsigned buf_index,
                                std::uint64_t user_data) {
  auto* sqe = static_cast<io_uring_sqe*>(
      prep(fd, IORING_OP_READ_FIXED, buf, len, offset, user_data));
  if (sqe == nullptr) return false;
  sqe->buf_index = static_cast<std::uint16_t>(buf_index);
  return true;
}

bool UringRing::prep_write_fixed(int fd, const void* buf, unsigned len,
                                 std::uint64_t offset, unsigned buf_index,
                                 std::uint64_t user_data) {
  auto* sqe = static_cast<io_uring_sqe*>(
      prep(fd, IORING_OP_WRITE_FIXED, buf, len, offset, user_data));
  if (sqe == nullptr) return false;
  sqe->buf_index = static_cast<std::uint16_t>(buf_index);
  return true;
}

bool UringRing::prep_writev(int fd, const iovec* iovecs, unsigned count,
                            std::uint64_t user_data) {
  return prep(fd, IORING_OP_WRITEV, iovecs, count, 0, user_data) != nullptr;
}

void UringRing::reap(std::vector<Completion>& out) {
  unsigned head = *cq_khead_;
  const unsigned mask = *cq_kmask_;
  for (;;) {
    const unsigned tail = __atomic_load_n(cq_ktail_, __ATOMIC_ACQUIRE);
    if (head == tail) break;
    while (head != tail) {
      const auto* cqe =
          static_cast<const io_uring_cqe*>(cqes_) + (head & mask);
      out.push_back({cqe->user_data, cqe->res, cqe->flags});
      ++head;
    }
  }
  __atomic_store_n(cq_khead_, head, __ATOMIC_RELEASE);
}

int UringRing::submit_and_wait(unsigned wait_n, std::vector<Completion>& out) {
  out.clear();
  if (ring_fd_ < 0) return -1;
  __atomic_store_n(sq_ktail_, sq_tail_local_, __ATOMIC_RELEASE);
  unsigned to_submit = pending_;
  pending_ = 0;
  for (;;) {
    reap(out);
    if (to_submit == 0 && out.size() >= wait_n)
      return static_cast<int>(out.size());
    const unsigned need =
        out.size() >= wait_n ? 0
                             : wait_n - static_cast<unsigned>(out.size());
    const int rc = sys_io_uring_enter(ring_fd_, to_submit, need,
                                      IORING_ENTER_GETEVENTS);
    enters_.fetch_add(1, std::memory_order_relaxed);
    if (rc < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return -1;
    }
    to_submit -= std::min(to_submit, static_cast<unsigned>(rc));
  }
}

}  // namespace automdt::net

#else  // !AUTOMDT_HAS_URING: unavailable stub — the engine probes and stays
       // on the syscall backend.

namespace automdt::net {

bool UringRing::available() { return false; }
bool UringRing::multishot_available() { return false; }
std::unique_ptr<UringRing> UringRing::create(unsigned) { return nullptr; }
UringRing::~UringRing() = default;
bool UringRing::register_buffers(const iovec*, unsigned) { return false; }
bool UringRing::setup_buf_ring(unsigned, unsigned short) { return false; }
void UringRing::provide_buffer(void*, unsigned, unsigned short) {}
bool UringRing::prep_recv_multishot(int, std::uint64_t) { return false; }
bool UringRing::prep_accept_multishot(int, std::uint64_t) { return false; }
bool UringRing::prep_read(int, void*, unsigned, std::uint64_t,
                          std::uint64_t) {
  return false;
}
bool UringRing::prep_write(int, const void*, unsigned, std::uint64_t,
                           std::uint64_t) {
  return false;
}
bool UringRing::prep_read_fixed(int, void*, unsigned, std::uint64_t, unsigned,
                                std::uint64_t) {
  return false;
}
bool UringRing::prep_write_fixed(int, const void*, unsigned, std::uint64_t,
                                 unsigned, std::uint64_t) {
  return false;
}
bool UringRing::prep_writev(int, const iovec*, unsigned, std::uint64_t) {
  return false;
}
void UringRing::reap(std::vector<Completion>&) {}
void* UringRing::prep(int, std::uint8_t, const void*, unsigned, std::uint64_t,
                      std::uint64_t) {
  return nullptr;
}
int UringRing::submit_and_wait(unsigned, std::vector<Completion>&) {
  return -1;
}

}  // namespace automdt::net

#endif  // AUTOMDT_HAS_URING
