#include "telemetry/bottleneck.hpp"

#include <algorithm>
#include <cstdio>

namespace automdt::telemetry {
namespace {

std::uint64_t delta(std::uint64_t now, std::uint64_t then) {
  return now >= then ? now - then : 0;  // counters are monotone; belt-and-braces
}

}  // namespace

BottleneckAttributor::BottleneckAttributor(Config config) : config_(config) {}

const char* BottleneckAttributor::stage_label(int stage) {
  switch (stage) {
    case 0: return "read";
    case 1: return "network";
    case 2: return "write";
  }
  return "?";
}

bool BottleneckAttributor::update(const PipelineSample& sample,
                                  std::uint64_t now_ns) {
  std::lock_guard lock(mutex_);
  if (primed_ &&
      now_ns < last_update_ns_ +
                   static_cast<std::uint64_t>(config_.min_interval_s * 1e9))
    return false;

  Attribution next;
  double best_self_frac = 0.0;
  double max_wall_s = 0.0;
  for (int s = 0; s < kPipelineStageCount; ++s) {
    const StageSample& cur = sample.stages[s];
    const StageSample& prev = last_.stages[s];
    const double busy_s =
        delta(cur.clocks.busy_ns, prev.clocks.busy_ns) * 1e-9;
    const double starved_s =
        delta(cur.clocks.blocked_upstream_ns, prev.clocks.blocked_upstream_ns) *
        1e-9;
    const double down_s = delta(cur.clocks.blocked_downstream_ns,
                                prev.clocks.blocked_downstream_ns) *
                          1e-9;
    const double throttle_s =
        std::min(down_s, delta(cur.throttle_ns, prev.throttle_ns) * 1e-9);
    const double bytes = static_cast<double>(delta(cur.bytes, prev.bytes));

    const double self_s = busy_s + throttle_s;
    const double backpressed_s = down_s - throttle_s;
    const double wall_s = self_s + starved_s + backpressed_s;
    max_wall_s = std::max(max_wall_s, wall_s);

    StageAttribution& out = next.stages[s];
    out.active_s = wall_s;
    if (wall_s < config_.min_active_s) continue;  // fractions stay 0
    out.busy_frac = self_s / wall_s;
    out.starved_frac = starved_s / wall_s;
    out.backpressure_frac = backpressed_s / wall_s;
    out.blocked_frac = out.starved_frac + out.backpressure_frac;
    if (self_s > 0) out.eff_mbps = bytes * 8.0 / 1e6 / self_s;
    if (out.busy_frac > best_self_frac) {
      best_self_frac = out.busy_frac;
      next.bottleneck = s;
    }
  }
  next.window_s = primed_ ? (now_ns - last_update_ns_) * 1e-9 : max_wall_s;

  last_ = sample;
  last_update_ns_ = now_ns;
  primed_ = true;
  current_ = next;
  return true;
}

Attribution BottleneckAttributor::attribution() const {
  std::lock_guard lock(mutex_);
  return current_;
}

std::string BottleneckAttributor::describe() const {
  Attribution a;
  {
    std::lock_guard lock(mutex_);
    if (!primed_) return {};  // no window yet: nothing to report
    a = current_;
  }
  std::string out;
  if (a.bottleneck >= 0) {
    out += "bottleneck: ";
    out += stage_label(a.bottleneck);
    out += " | ";
  } else {
    out += "bottleneck: unclassified | ";
  }
  char buf[128];
  for (int s = 0; s < kPipelineStageCount; ++s) {
    const StageAttribution& st = a.stages[s];
    std::snprintf(buf, sizeof(buf), "%s %.2f busy", stage_label(s),
                  st.busy_frac);
    out += buf;
    // Name the dominant blocked mode only when it is the stage's main story.
    if (st.starved_frac > st.busy_frac ||
        st.backpressure_frac > st.busy_frac) {
      const bool starved = st.starved_frac >= st.backpressure_frac;
      std::snprintf(buf, sizeof(buf), " %.2f %s",
                    starved ? st.starved_frac : st.backpressure_frac,
                    starved ? "blocked-upstream" : "blocked-downstream");
      out += buf;
    }
    if (s + 1 < kPipelineStageCount) out += ", ";
  }
  return out;
}

}  // namespace automdt::telemetry
