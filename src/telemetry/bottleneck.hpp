// Online bottleneck attribution from stage clocks + byte counters.
//
// The paper's control story is built on the end-to-end bottleneck
// b = min(B_read, B_network, B_write); the probe estimates it *offline* from
// throttled sweeps (probe_log.cpp). This classifier answers the live
// question — "which stage is the bottleneck right now, and how utilized is
// each stage?" — from the always-on StageClock totals plus the per-stage
// byte counters the engine already exports.
//
// Attribution rule (DESIGN.md §14): over a delta window, each stage's time
// splits into
//   self        = busy + token-bucket throttle wait (the stage running at
//                 its own — possibly emulated — speed)
//   starved     = blocked-upstream (input not arriving)
//   backpressed = blocked-downstream minus throttle (output not draining)
// with parked time excluded from the denominator (gated workers are
// deliberately idle, not evidence). The bottleneck is the stage with the
// highest self fraction: the stage that is the constraint spends its time
// working or waiting on its own rate limit, while the others starve or back
// up behind it. Effective per-stage bandwidth is bytes / self-seconds — the
// per-worker-second rate the stage actually achieved while it was the one
// doing the work.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "telemetry/stage_clock.hpp"

namespace automdt::telemetry {

/// One pipeline stage's monotone totals, as fed to update().
struct StageSample {
  StageClockTotals clocks;
  /// Token-bucket wait, a subset of clocks.blocked_downstream_ns.
  std::uint64_t throttle_ns = 0;
  std::uint64_t bytes = 0;
};

inline constexpr int kPipelineStageCount = 3;  // read / network / write

struct PipelineSample {
  StageSample stages[kPipelineStageCount];
};

/// Per-stage utilization fractions for the last computed window.
struct StageAttribution {
  double busy_frac = 0.0;          // self / (self + starved + backpressed)
  double blocked_frac = 0.0;       // 1 - busy_frac (when classifiable)
  double starved_frac = 0.0;       // blocked-upstream share
  double backpressure_frac = 0.0;  // blocked-downstream share, throttle removed
  double eff_mbps = 0.0;           // bytes over self-time, Mbit per worker-second
  double active_s = 0.0;           // non-parked worker-seconds in the window
};

struct Attribution {
  int bottleneck = -1;  // 0 read, 1 network, 2 write; -1 = not classifiable
  double window_s = 0.0;
  StageAttribution stages[kPipelineStageCount];
};

class BottleneckAttributor {
 public:
  struct Config {
    /// Minimum spacing between window recomputes; update() calls inside the
    /// interval keep the previous attribution (snapshot storms stay cheap).
    double min_interval_s = 0.2;
    /// A stage needs this many non-parked worker-seconds in the window to be
    /// eligible; below it the verdict is "not classifiable" rather than a
    /// guess from noise.
    double min_active_s = 1e-3;
  };

  BottleneckAttributor() : BottleneckAttributor(Config()) {}
  explicit BottleneckAttributor(Config config);

  /// Feed monotone absolute totals. Recomputes the window at most every
  /// min_interval_s (the first call computes from zero, i.e. run-so-far).
  /// Returns true when a new window was computed. Thread-safe.
  bool update(const PipelineSample& sample, std::uint64_t now_ns);

  /// Copy of the last computed attribution. Thread-safe.
  Attribution attribution() const;

  /// Human utilization evidence for stall reports, e.g.
  /// "bottleneck: write | read 0.04 busy 0.92 backpressured, network 0.07
  ///  busy 0.89 starved, write 0.97 busy". Empty until the first window.
  std::string describe() const;

  static const char* stage_label(int stage);  // "read" / "network" / "write"

 private:
  const Config config_;
  mutable std::mutex mutex_;
  bool primed_ = false;
  std::uint64_t last_update_ns_ = 0;
  PipelineSample last_;
  Attribution current_;
};

}  // namespace automdt::telemetry
