// Flight-recorder event journal: a lock-free, bounded, overwrite-oldest ring
// of recent log events, readable at any moment for post-mortem dumps.
//
// The problem it solves: a hung or crashed transfer leaves zero evidence —
// stderr is gone with the terminal, and grepping per-worker logs back into a
// timeline is exactly the "which stage stalled" diagnosis the paper calls
// hard. The journal keeps the last N events (default 4096) in memory with
// sequence numbers and thread ids, so the watchdog / failure paths can dump
// an ordered tail alongside a registry snapshot.
//
// Memory model (DESIGN.md §11): writers never block and never allocate
// inside the journal. append() claims a slot with one relaxed fetch_add on
// the global cursor, then takes the slot's per-slot version lock with a
// single CAS (even = stable, odd = being written). The CAS can only fail if
// another writer lapped the entire ring and landed on the same slot while
// this writer was mid-claim — vanishingly rare at 4096 slots — and then the
// event is dropped and counted rather than waited for; the hot path has no
// loops, locks, or syscalls. Every payload field (including the text bytes)
// is a relaxed atomic, so concurrent read/write is well-defined and
// TSan-clean; readers detect torn slots by re-checking the version after
// copying and simply skip them.
//
// Readers (watchdog dump, tests) are cold-path: they sweep the ring, keep
// slots whose version was stable across the copy, and sort by sequence
// number. A reader never impedes writers.
//
// install_log_journal() bridges the existing LOG_* macros: every log line at
// or above the journal's level is appended here (in addition to the locked
// stderr sink in common/logging.cpp, which stays authoritative for live
// output).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/logging.hpp"

namespace automdt::telemetry {

/// One copied-out journal event (reader-side view).
struct JournalEvent {
  std::uint64_t seq = 0;    // global append order (0-based)
  std::uint64_t t_ns = 0;   // steady-clock nanoseconds at append
  std::uint32_t thread = 0; // hashed thread id (stable within a run)
  LogLevel level = LogLevel::kInfo;
  std::string text;
};

class EventJournal : public LogSink {
 public:
  static constexpr std::size_t kTextBytes = 216;

  /// `capacity` is rounded up to a power of two (min 64).
  explicit EventJournal(std::size_t capacity = 4096);

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  /// Record one event; text beyond kTextBytes-1 is truncated. Never blocks:
  /// worst case is one failed CAS and a bumped drop counter.
  void append(LogLevel level, std::string_view text);

  /// LogSink: the LOG_* macro bridge.
  void write(LogLevel level, std::string_view message) override {
    append(level, message);
  }

  /// Events ever appended (including those since overwritten).
  std::uint64_t appended() const {
    return cursor_.load(std::memory_order_relaxed);
  }
  /// Events lost to writer collisions (not to normal ring overwrite).
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return slots_n_; }

  /// The most recent `max_events` events, oldest first. Torn slots (written
  /// concurrently with the sweep) are skipped, so under heavy concurrent
  /// writes the result can be slightly shorter than the ring.
  std::vector<JournalEvent> tail(std::size_t max_events) const;

  /// Human-readable tail dump: "seq  +t_ms  [LEVEL] [tid] text" lines.
  void dump(std::ostream& os, std::size_t max_events) const;

 private:
  struct Slot {
    // Even = stable, odd = mid-write; advances by 2 per successful write.
    std::atomic<std::uint64_t> version{0};
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> t_ns{0};
    std::atomic<std::uint32_t> thread{0};
    std::atomic<std::uint8_t> level{0};
    std::atomic<std::uint16_t> length{0};
    std::atomic<char> text[kTextBytes];
  };

  std::size_t slots_n_;
  std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> cursor_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// Install `journal` as the process-wide LOG_* sink (nullptr to detach).
/// Equivalent to set_log_sink(journal); named for discoverability.
void install_log_journal(EventJournal* journal);

}  // namespace automdt::telemetry
