#include "telemetry/stats_server.hpp"

#include <chrono>
#include <utility>

namespace automdt::telemetry {

transfer::StatsSnapshotResponse snapshot_to_message(
    const MetricsSnapshot& snapshot, std::uint64_t request_id) {
  transfer::StatsSnapshotResponse message;
  message.request_id = request_id;
  message.generation = snapshot.generation;
  message.uptime_s = snapshot.uptime_s;
  message.metrics.reserve(snapshot.samples.size());
  for (const MetricSample& sample : snapshot.samples)
    message.metrics.push_back({sample.name, sample.value});
  return message;
}

MetricsSnapshot message_to_snapshot(
    const transfer::StatsSnapshotResponse& message) {
  MetricsSnapshot snapshot;
  snapshot.generation = message.generation;
  snapshot.uptime_s = message.uptime_s;
  snapshot.samples.reserve(message.metrics.size());
  for (const transfer::MetricValue& metric : message.metrics)
    snapshot.samples.push_back({metric.name, metric.value});
  return snapshot;
}

StatsServer::StatsServer(StatsServerConfig config, SnapshotFn source)
    : config_(std::move(config)), source_(std::move(source)) {}

StatsServer::~StatsServer() { stop(); }

bool StatsServer::start() {
  if (started_) return true;
  listener_ = net::Listener::open(config_.host, config_.port);
  if (!listener_) return false;
  port_ = listener_->port();
  started_ = true;
  stopping_.store(false);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void StatsServer::accept_loop() {
  while (!stopping_.load()) {
    auto socket = listener_->accept(config_.accept_poll_s);
    if (!socket) continue;  // timeout poll, or woken by stop()
    auto transport = net::TcpTransport::adopt(std::move(*socket));
    if (!transport) continue;
    accepted_.fetch_add(1);
    net::TcpTransport* raw = transport.get();
    {
      std::lock_guard lock(connections_mutex_);
      if (stopping_.load()) return;  // stop() won the race; it joins us next
      connections_.push_back(std::move(transport));
      handlers_.emplace_back([this, raw] { serve_connection(raw); });
    }
  }
}

void StatsServer::serve_connection(net::TcpTransport* transport) {
  // receive() blocks until a message arrives or stop()/peer-close wakes it.
  while (auto message = transport->receive()) {
    const auto* request = std::get_if<transfer::StatsSnapshotRequest>(&*message);
    if (!request) continue;  // only snapshot requests are served here
    transport->send(snapshot_to_message(source_(), request->request_id));
    requests_.fetch_add(1);
  }
}

void StatsServer::stop() {
  if (!started_) return;
  stopping_.store(true);
  listener_->shutdown();  // wakes a blocked accept()
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<net::TcpTransport>> connections;
  std::vector<std::thread> handlers;
  {
    std::lock_guard lock(connections_mutex_);
    connections.swap(connections_);
    handlers.swap(handlers_);
  }
  for (auto& transport : connections) transport->close();  // wakes receive()
  for (auto& handler : handlers)
    if (handler.joinable()) handler.join();
  listener_->close();
  listener_.reset();
  started_ = false;
}

std::unique_ptr<StatsClient> StatsClient::connect(
    const std::string& host, std::uint16_t port,
    const net::ConnectorConfig& connector) {
  auto transport = net::TcpTransport::connect(host, port, connector);
  if (!transport) return nullptr;
  return std::unique_ptr<StatsClient>(new StatsClient(std::move(transport)));
}

std::optional<transfer::StatsSnapshotResponse> StatsClient::poll(
    double timeout_s) {
  if (!transport_ || !transport_->connected()) return std::nullopt;
  const std::uint64_t id = next_request_id_++;
  transport_->send(transfer::StatsSnapshotRequest{id});
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  // try_receive + sleep rather than blocking receive(): a dead server must
  // not wedge `automdt monitor --once` past its timeout.
  while (std::chrono::steady_clock::now() < deadline) {
    if (auto message = transport_->try_receive()) {
      auto* response = std::get_if<transfer::StatsSnapshotResponse>(&*message);
      if (response && response->request_id == id) return std::move(*response);
      continue;  // stale response or unrelated control traffic: keep draining
    }
    if (!transport_->connected()) return std::nullopt;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return std::nullopt;
}

}  // namespace automdt::telemetry
