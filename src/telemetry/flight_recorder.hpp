// Flight recorder: one-call post-mortem dumps, plus the pipeline watchdog
// that triggers them on stalls.
//
// A dump is a single timestamped text file containing, in order: the reason,
// wall-clock and steady-clock stamps, a generation-stamped JSON snapshot of
// every registered metric (histogram percentiles included), and the ordered
// tail of the event journal. That is everything the "which stage stalled and
// why" diagnosis needs, captured at the moment of failure rather than
// reconstructed afterwards.
//
// The PipelineWatchdog owns a background thread that polls a progress
// function every poll_interval_s. The progress function returns the current
// progress value (e.g. bytes written) while unfinished work remains, or
// nullopt when the pipeline is idle/done. If the value stops advancing for
// stall_after_s while work remains, the watchdog fires exactly one dump and
// disarms; it re-arms automatically when progress resumes (or explicitly via
// rearm() at episode boundaries), so a persistent stall produces one file,
// not one per poll. The predicate is deliberately "no progress while work
// remains" rather than "queues non-empty": a stalled *writer* drains nothing,
// but a stalled *reader* lets the queues run empty while bytes_written is
// still short of the goal — both must trip it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>

#include "telemetry/journal.hpp"
#include "telemetry/metrics.hpp"

namespace automdt::telemetry {

struct FlightRecorderConfig {
  std::string out_dir = ".";              // dump files land here
  std::string prefix = "automdt-flight";  // file name prefix
  std::size_t journal_tail = 256;         // max journal events per dump
};

class FlightRecorder {
 public:
  /// Either source may be null; the dump simply omits that section.
  FlightRecorder(FlightRecorderConfig config, const MetricsRegistry* registry,
                 const EventJournal* journal);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Write one dump file; returns its path, or "" on I/O failure. Serialized
  /// internally — concurrent callers produce distinct, complete files.
  std::string dump(std::string_view reason);

  /// Write the dump body (no file) — the file path header excluded.
  void write(std::ostream& os, std::string_view reason) const;

  /// Re-point the metrics source (e.g. when a serve loop recycles transfer
  /// sessions and their registries). Null detaches; safe against concurrent
  /// dump() calls.
  void set_registry(const MetricsRegistry* registry) {
    registry_.store(registry, std::memory_order_release);
  }

  std::uint64_t dumps() const { return dumps_.load(std::memory_order_relaxed); }
  std::string last_path() const;

 private:
  FlightRecorderConfig config_;
  std::atomic<const MetricsRegistry*> registry_;
  const EventJournal* journal_;
  mutable std::mutex mutex_;
  std::atomic<std::uint64_t> dumps_{0};
  std::string last_path_;
};

struct WatchdogConfig {
  double poll_interval_s = 0.5;
  double stall_after_s = 5.0;
  /// Optional stall-context provider, evaluated at dump time and appended to
  /// the dump reason. The serve plane uses it to name *which* session(s)
  /// stalled — a multi-session process's aggregate progress counter alone
  /// cannot say. Keep it cheap and thread-safe (runs on the watchdog thread).
  std::function<std::string()> context_fn;
};

class PipelineWatchdog {
 public:
  /// Returns the monotone progress value while unfinished work remains, or
  /// nullopt when idle/complete (which always resets the stall timer).
  using ProgressFn = std::function<std::optional<std::uint64_t>()>;

  /// `recorder` may be null (stalls are then only counted and logged).
  PipelineWatchdog(WatchdogConfig config, ProgressFn progress,
                   FlightRecorder* recorder);
  ~PipelineWatchdog();

  PipelineWatchdog(const PipelineWatchdog&) = delete;
  PipelineWatchdog& operator=(const PipelineWatchdog&) = delete;

  void start();
  void stop();

  /// Allow the next stall to dump again (episode boundary). Also happens
  /// automatically when progress resumes after a stall.
  void rearm();

  std::uint64_t stalls_detected() const {
    return stalls_.load(std::memory_order_relaxed);
  }

 private:
  void loop();

  WatchdogConfig config_;
  ProgressFn progress_;
  FlightRecorder* recorder_;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool running_ = false;
  std::thread thread_;

  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<bool> armed_{true};
};

}  // namespace automdt::telemetry
