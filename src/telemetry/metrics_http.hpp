// Minimal HTTP/1.1 responder for `GET /metrics`.
//
// Serves a Prometheus-/OpenMetrics-format scrape endpoint next to the
// existing kStatsSnapshot RPC plane (stats_server.hpp): same accept-thread +
// thread-per-connection shape, but speaking just enough HTTP/1.1 for
// `curl :PORT/metrics` and a Prometheus scraper — one request per
// connection, `Connection: close`, no keep-alive, no TLS. The body is
// produced by a caller-supplied render function so the CLI can serve a live
// TransferSession registry (re-resolved per scrape: sessions recycle across
// transfers), a SessionServer registry, or the trainer's local registry
// through one server type.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"

namespace automdt::telemetry {

struct MetricsHttpServerConfig {
  std::string host = "0.0.0.0";  // scrape endpoints are usually remote
  std::uint16_t port = 0;        // 0 = ephemeral (tests)
  double accept_poll_s = 0.2;    // stop() latency bound
  double io_timeout_s = 5.0;     // per-request read/write budget
};

class MetricsHttpServer {
 public:
  /// Renders one scrape body (OpenMetrics text, see openmetrics.hpp). Called
  /// per request from a connection thread; must be thread-safe.
  using RenderFn = std::function<std::string()>;

  MetricsHttpServer(MetricsHttpServerConfig config, RenderFn render);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  bool start();
  void stop();

  std::uint16_t port() const { return port_; }
  std::uint64_t requests_served() const { return requests_.load(); }

 private:
  void accept_loop();
  void serve_connection(net::Socket* socket);

  MetricsHttpServerConfig config_;
  RenderFn render_;
  std::optional<net::Listener> listener_;
  std::uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::deque<net::Socket> connections_;  // stable addresses across growth
  std::vector<std::thread> handlers_;
};

}  // namespace automdt::telemetry
