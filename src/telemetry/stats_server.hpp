// Live monitoring endpoint: the kStatsSnapshot RPC served over TCP.
//
// StatsServer listens on a control port and answers StatsSnapshotRequest
// messages with a registry dump, using the same TcpTransport framing as the
// DtnPair control channel — a monitor speaks one protocol whether it asks
// the receiver agent mid-transfer or a standalone telemetry port. The
// snapshot source is a callback so the server never holds a reference into
// engine internals: `automdt serve` points it at whichever TransferSession
// is currently live.
//
// StatsClient is the other end: connect, poll(), get a snapshot or time
// out. `automdt monitor` renders its polls at 1 Hz — the same observation
// vector the agent consumes, now visible to a human.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "net/tcp_transport.hpp"
#include "telemetry/metrics.hpp"
#include "transfer/rpc_messages.hpp"

namespace automdt::telemetry {

/// Flatten a registry snapshot into the wire message (and back).
transfer::StatsSnapshotResponse snapshot_to_message(
    const MetricsSnapshot& snapshot, std::uint64_t request_id);
MetricsSnapshot message_to_snapshot(
    const transfer::StatsSnapshotResponse& message);

struct StatsServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; read back via port()
  double accept_poll_s = 0.2;
};

class StatsServer {
 public:
  using SnapshotFn = std::function<MetricsSnapshot()>;

  /// `source` runs on server threads for every request; keep it thread-safe.
  StatsServer(StatsServerConfig config, SnapshotFn source);
  ~StatsServer();

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// Bind, listen, and start accepting. False if the port is taken.
  bool start();

  std::uint16_t port() const { return port_; }

  /// Stop accepting, drop every connection, join all threads. Idempotent.
  void stop();

  std::uint64_t requests_served() const { return requests_.load(); }
  std::uint64_t connections_accepted() const { return accepted_.load(); }

 private:
  void accept_loop();
  void serve_connection(net::TcpTransport* transport);

  StatsServerConfig config_;
  SnapshotFn source_;
  std::optional<net::Listener> listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<net::TcpTransport>> connections_;
  std::vector<std::thread> handlers_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<bool> stopping_{false};
  bool started_ = false;
};

/// Client side of the monitoring endpoint.
class StatsClient {
 public:
  static std::unique_ptr<StatsClient> connect(
      const std::string& host, std::uint16_t port,
      const net::ConnectorConfig& connector = {});

  /// One request/response round-trip. nullopt on timeout or closed channel.
  std::optional<transfer::StatsSnapshotResponse> poll(double timeout_s);

  bool connected() const { return transport_ && transport_->connected(); }

 private:
  explicit StatsClient(std::unique_ptr<net::TcpTransport> transport)
      : transport_(std::move(transport)) {}

  std::unique_ptr<net::TcpTransport> transport_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace automdt::telemetry
