#include "telemetry/trace_export.hpp"

#include <algorithm>
#include <fstream>

#include "telemetry/metrics.hpp"  // json_escape

namespace automdt::telemetry {

TraceExporter::TraceExporter(std::size_t max_events)
    : max_events_(std::max<std::size_t>(max_events, 1)) {
  events_.reserve(std::min<std::size_t>(max_events_, 4096));
}

int TraceExporter::track(const std::string& process,
                         const std::string& thread) {
  std::lock_guard lock(mutex_);
  int pid = 0, tid = 0, max_pid = 0;
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i].process == process) {
      if (tracks_[i].thread == thread) return static_cast<int>(i);
      pid = tracks_[i].pid;
      tid = std::max(tid, tracks_[i].tid);
    }
    max_pid = std::max(max_pid, tracks_[i].pid);
  }
  Track t;
  t.process = process;
  t.thread = thread;
  t.pid = pid != 0 ? pid : max_pid + 1;
  t.tid = tid + 1;
  tracks_.push_back(std::move(t));
  return static_cast<int>(tracks_.size() - 1);
}

void TraceExporter::emit(int track, std::string_view name,
                         std::uint64_t start_ns, std::uint64_t duration_ns,
                         std::string_view id, std::string_view args_json) {
  std::lock_guard lock(mutex_);
  if (track < 0 || track >= static_cast<int>(tracks_.size())) return;
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  Event e;
  e.track = track;
  e.start_ns = start_ns;
  e.duration_ns = duration_ns;
  e.name.assign(name);
  e.id.assign(id);
  e.args_json.assign(args_json);
  events_.push_back(std::move(e));
}

void TraceExporter::instant(int track, std::string_view name,
                            std::uint64_t ts_ns) {
  std::lock_guard lock(mutex_);
  if (track < 0 || track >= static_cast<int>(tracks_.size())) return;
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  Event e;
  e.track = track;
  e.instant = true;
  e.start_ns = ts_ns;
  e.name.assign(name);
  events_.push_back(std::move(e));
}

std::size_t TraceExporter::events() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

std::uint64_t TraceExporter::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

void TraceExporter::write_chrome_json(std::ostream& os) const {
  std::lock_guard lock(mutex_);
  // Rebase onto the earliest event so the viewer opens near t=0 and the
  // microsecond doubles keep sub-microsecond precision.
  std::uint64_t epoch_ns = 0;
  bool have_epoch = false;
  for (const Event& e : events_) {
    if (!have_epoch || e.start_ns < epoch_ns) {
      epoch_ns = e.start_ns;
      have_epoch = true;
    }
  }
  const auto us = [epoch_ns](std::uint64_t ns) {
    return static_cast<double>(ns - epoch_ns) / 1000.0;
  };
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto sep = [&os, &first] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  // Metadata first: names for every registered process/thread pair. One
  // process_name event per distinct pid is enough, but emitting it per track
  // is harmless and keeps this loop trivial.
  for (const Track& t : tracks_) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << t.pid
       << ",\"tid\":" << t.tid << ",\"args\":{\"name\":\""
       << json_escape(t.process) << "\"}}";
    sep();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << t.pid
       << ",\"tid\":" << t.tid << ",\"args\":{\"name\":\""
       << json_escape(t.thread) << "\"}}";
  }
  const auto old_precision = os.precision(3);
  const auto old_flags = os.setf(std::ios::fixed, std::ios::floatfield);
  for (const Event& e : events_) {
    const Track& t = tracks_[static_cast<std::size_t>(e.track)];
    sep();
    os << "{\"name\":\"" << json_escape(e.name) << "\",\"ph\":\""
       << (e.instant ? "i" : "X") << "\",\"pid\":" << t.pid
       << ",\"tid\":" << t.tid << ",\"ts\":" << us(e.start_ns);
    if (e.instant) {
      os << ",\"s\":\"t\"";
    } else {
      os << ",\"dur\":" << static_cast<double>(e.duration_ns) / 1000.0;
    }
    if (!e.id.empty() || !e.args_json.empty()) {
      os << ",\"args\":{";
      if (!e.id.empty()) os << "\"chunk\":\"" << json_escape(e.id) << "\"";
      if (!e.args_json.empty()) {
        if (!e.id.empty()) os << ",";
        os << e.args_json;
      }
      os << "}";
    }
    os << "}";
  }
  os.precision(old_precision);
  os.flags(old_flags);
  os << "\n]}\n";
}

bool TraceExporter::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_chrome_json(f);
  return static_cast<bool>(f);
}

}  // namespace automdt::telemetry
