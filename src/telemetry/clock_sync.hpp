// NTP-style clock synchronization between two DTN agents' steady clocks.
//
// std::chrono::steady_clock is monotonic but process-local: the sender's and
// receiver's timestamps live in unrelated timebases, which is why chunk trace
// stamps historically stopped at the TCP boundary (the receiver re-stamped).
// To correlate a sender-side wire stamp with receiver-side events we estimate
// the offset between the two clocks over the existing control channel:
//
//   sender                          receiver
//   t0 = now() ── ClockSyncRequest ──▶ t1 = now()
//   t3 = now() ◀─ ClockSyncResponse ── t2 = now()
//
//   offset = ((t1 - t0) + (t2 - t3)) / 2      (receiver = sender + offset)
//   rtt    = (t3 - t0) - (t2 - t1)
//
// With symmetric path delay the offset is exact; with asymmetry the error is
// bounded by rtt/2, so the estimator keeps the sample with the smallest RTT
// (the classic NTP filter) and the bound shrinks as samples accumulate.
// Re-syncing periodically bounds drift; each re-sync round only replaces the
// estimate if its best sample is at least as tight as the current one within
// the round's window.
//
// ClockModel is the hot-path view: one relaxed atomic load for the offset,
// written whenever the estimator improves. The engine's receiver-side chunk
// handler reads it to shift wire stamps into the local timebase.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>

namespace automdt::telemetry {

/// One request/response round trip's four timestamps, all in nanoseconds:
/// t0/t3 on the requester's clock, t1/t2 on the responder's.
struct ClockSyncSample {
  std::uint64_t t0_ns = 0;  // requester: request sent
  std::uint64_t t1_ns = 0;  // responder: request received
  std::uint64_t t2_ns = 0;  // responder: response sent
  std::uint64_t t3_ns = 0;  // requester: response received

  /// responder_clock = requester_clock + offset.
  std::int64_t offset_ns() const {
    // Averaged as two signed one-way deltas; each fits i64 for any two
    // steady-clock epochs that are less than ~292 years apart.
    const auto forward = static_cast<std::int64_t>(t1_ns - t0_ns);
    const auto backward = static_cast<std::int64_t>(t2_ns - t3_ns);
    return (forward + backward) / 2;
  }

  /// Path delay excluding responder processing time. 0 for malformed samples
  /// (t3 < t0 or processing longer than the round trip).
  std::uint64_t rtt_ns() const {
    if (t3_ns < t0_ns || t2_ns < t1_ns) return 0;
    const std::uint64_t total = t3_ns - t0_ns;
    const std::uint64_t processing = t2_ns - t1_ns;
    return processing > total ? 0 : total - processing;
  }

  bool valid() const { return t3_ns >= t0_ns && t2_ns >= t1_ns; }
};

/// Lock-free published estimate: the consumer side (engine chunk handler)
/// pays one relaxed load per traced chunk; the producer (sync loop) stores
/// whenever a better sample lands. A default-constructed model reads as
/// offset 0 — correct for the single-process loopback deployments where both
/// "hosts" share one steady clock.
class ClockModel {
 public:
  void publish(std::int64_t offset_ns, std::uint64_t rtt_ns) {
    offset_ns_.store(offset_ns, std::memory_order_relaxed);
    rtt_ns_.store(rtt_ns, std::memory_order_relaxed);
    synced_.store(true, std::memory_order_release);
  }

  std::int64_t offset_ns() const {
    return offset_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t rtt_ns() const {
    return rtt_ns_.load(std::memory_order_relaxed);
  }
  bool synced() const { return synced_.load(std::memory_order_acquire); }

 private:
  std::atomic<std::int64_t> offset_ns_{0};
  std::atomic<std::uint64_t> rtt_ns_{0};
  std::atomic<bool> synced_{false};
};

/// Min-RTT sample filter. add() returns true when the new sample became the
/// estimate (strictly tighter RTT than anything seen in this round's window).
/// Not thread-safe — one sync loop owns it and publishes into a ClockModel.
class ClockSyncEstimator {
 public:
  bool add(const ClockSyncSample& sample) {
    if (!sample.valid() || sample.rtt_ns() == 0) return false;
    ++samples_;
    if (!have_best_ || sample.rtt_ns() < best_rtt_ns_) {
      best_rtt_ns_ = sample.rtt_ns();
      best_offset_ns_ = sample.offset_ns();
      have_best_ = true;
      return true;
    }
    return false;
  }

  bool valid() const { return have_best_; }
  std::int64_t offset_ns() const { return best_offset_ns_; }
  std::uint64_t rtt_ns() const { return best_rtt_ns_; }
  /// Asymmetric-delay error bound on offset_ns(): ±rtt/2.
  std::uint64_t error_bound_ns() const { return best_rtt_ns_ / 2; }
  std::uint64_t samples() const { return samples_; }

  /// Start a fresh re-sync round: keep nothing, so periodic re-syncs track
  /// drift instead of pinning to a historic minimum forever.
  void reset() {
    have_best_ = false;
    best_rtt_ns_ = 0;
    best_offset_ns_ = 0;
    samples_ = 0;
  }

 private:
  bool have_best_ = false;
  std::uint64_t best_rtt_ns_ = 0;
  std::int64_t best_offset_ns_ = 0;
  std::uint64_t samples_ = 0;
};

}  // namespace automdt::telemetry
