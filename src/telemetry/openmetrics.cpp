#include "telemetry/openmetrics.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

namespace automdt::telemetry {
namespace {

bool valid_name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

std::string sanitize(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) out += valid_name_char(c) ? c : '_';
  return out;
}

/// "0.97", "123", "NaN", "+Inf" — integral values print without a fraction
/// so counters stay exact and the golden test stays readable.
std::string format_value(double v) {
  char buf[64];
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == std::floor(v) && std::abs(v) < 9.0e15)
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  else
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

struct Item {
  OpenMetricsName name;
  enum class Kind { kCounter, kGauge, kHistogram } kind;
  double value = 0.0;
  HistogramSnapshot hist;
};

class Collector : public MetricsRegistry::Visitor {
 public:
  void on_counter(const std::string& name, std::uint64_t value) override {
    items_.push_back({openmetrics_name(name), Item::Kind::kCounter,
                      static_cast<double>(value), {}});
  }
  void on_gauge(const std::string& name, double value) override {
    items_.push_back({openmetrics_name(name), Item::Kind::kGauge, value, {}});
  }
  void on_histogram(const std::string& name,
                    const HistogramSnapshot& snapshot) override {
    items_.push_back(
        {openmetrics_name(name), Item::Kind::kHistogram, 0.0, snapshot});
  }
  std::vector<Item> items_;
};

/// `{session="7"}` / `{session="7",le="63"}` / `{le="63"}` / ``.
std::string label_set(const OpenMetricsName& name, const char* le = nullptr) {
  if (name.label_key.empty() && le == nullptr) return "";
  std::string out = "{";
  if (!name.label_key.empty()) {
    out += name.label_key;
    out += "=\"";
    out += openmetrics_escape_label(name.label_value);
    out += '"';
    if (le != nullptr) out += ',';
  }
  if (le != nullptr) {
    out += "le=\"";
    out += le;
    out += '"';
  }
  out += '}';
  return out;
}

void render_item(std::string& out, const Item& item) {
  const std::string labels = label_set(item.name);
  switch (item.kind) {
    case Item::Kind::kCounter:
      out += item.name.family + "_total" + labels + ' ' +
             format_value(item.value) + '\n';
      break;
    case Item::Kind::kGauge:
      out += item.name.family + labels + ' ' + format_value(item.value) + '\n';
      break;
    case Item::Kind::kHistogram: {
      // Cumulative buckets over the histogram's exact integer upper bounds;
      // empty buckets are skipped (1920 log-linear buckets would bloat every
      // scrape), +Inf always closes the series.
      std::uint64_t cumulative = 0;
      char le[32];
      for (std::size_t i = 0; i < item.hist.counts.size(); ++i) {
        if (item.hist.counts[i] == 0) continue;
        cumulative += item.hist.counts[i];
        std::snprintf(le, sizeof(le), "%llu",
                      static_cast<unsigned long long>(
                          LogLinearHistogram::bucket_upper(i)));
        out += item.name.family + "_bucket" + label_set(item.name, le) + ' ' +
               format_value(static_cast<double>(cumulative)) + '\n';
      }
      out += item.name.family + "_bucket" + label_set(item.name, "+Inf") +
             ' ' + format_value(static_cast<double>(item.hist.count)) + '\n';
      out += item.name.family + "_sum" + labels + ' ' +
             format_value(static_cast<double>(item.hist.sum)) + '\n';
      out += item.name.family + "_count" + labels + ' ' +
             format_value(static_cast<double>(item.hist.count)) + '\n';
      break;
    }
  }
}

const char* type_name(Item::Kind kind) {
  switch (kind) {
    case Item::Kind::kCounter: return "counter";
    case Item::Kind::kGauge: return "gauge";
    case Item::Kind::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

OpenMetricsName openmetrics_name(std::string_view raw) {
  OpenMetricsName out;
  // session.<id>.rest / tenant.<name>.rest -> label; the middle component is
  // operator data (tenant names especially), not a metric name.
  for (const std::string_view prefix : {"session.", "tenant."}) {
    if (raw.size() > prefix.size() &&
        raw.substr(0, prefix.size()) == prefix) {
      const std::size_t dot = raw.find('.', prefix.size());
      if (dot != std::string_view::npos && dot + 1 < raw.size()) {
        out.label_key = std::string(prefix.substr(0, prefix.size() - 1));
        out.label_value = std::string(raw.substr(prefix.size(),
                                                 dot - prefix.size()));
        out.family = "automdt_" + out.label_key + '_' +
                     sanitize(raw.substr(dot + 1));
        return out;
      }
    }
  }
  out.family = "automdt_" + sanitize(raw);
  return out;
}

std::string openmetrics_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string render_openmetrics(const MetricsRegistry& registry) {
  Collector collector;
  collector.on_gauge("uptime_seconds", registry.uptime_s());
  registry.visit(collector);

  // Group samples by family: one # TYPE line per family, all samples (e.g.
  // every session's label variant) directly beneath it, first-seen order.
  std::vector<std::size_t> family_order;
  std::map<std::string, std::vector<std::size_t>> families;
  for (std::size_t i = 0; i < collector.items_.size(); ++i) {
    auto [it, inserted] =
        families.try_emplace(collector.items_[i].name.family);
    if (inserted) family_order.push_back(i);
    it->second.push_back(i);
  }

  std::string out;
  out.reserve(4096);
  for (const std::size_t first : family_order) {
    const Item& head = collector.items_[first];
    out += "# TYPE " + head.name.family + ' ' + type_name(head.kind) + '\n';
    for (const std::size_t i : families[head.name.family])
      render_item(out, collector.items_[i]);
  }
  out += "# EOF\n";
  return out;
}

}  // namespace automdt::telemetry
