#include "telemetry/recorder.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

namespace automdt::telemetry {

TimeSeriesRecorder::TimeSeriesRecorder(MetricsRegistry& registry,
                                       RecorderConfig config)
    : registry_(registry), config_(config), start_(Clock::now()) {
  if (config_.capacity == 0) config_.capacity = 1;
  if (config_.interval_s <= 0.0) config_.interval_s = 1.0;
  ring_.resize(config_.capacity);
}

TimeSeriesRecorder::~TimeSeriesRecorder() { stop(); }

void TimeSeriesRecorder::start() {
  {
    std::lock_guard lock(mutex_);
    if (running_) return;
    running_ = true;
  }
  start_ = Clock::now();
  sampler_ = std::thread([this] { run(); });
}

void TimeSeriesRecorder::stop() {
  {
    std::lock_guard lock(mutex_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
}

void TimeSeriesRecorder::run() {
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(config_.interval_s));
  auto next_tick = start_ + interval;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      cv_.wait_until(lock, next_tick, [&] { return !running_; });
      if (!running_) return;
    }
    // Sample outside the lock: the registry snapshot runs callbacks.
    sample_now();
    next_tick += interval;
    // If sampling fell behind (debugger, suspended VM), re-anchor instead of
    // firing a burst of stale rows.
    const auto now = Clock::now();
    if (next_tick < now) next_tick = now + interval;
  }
}

void TimeSeriesRecorder::sample_now() {
  sample_at(std::chrono::duration<double>(Clock::now() - start_).count());
}

void TimeSeriesRecorder::sample_at(double time_s) {
  Row row;
  row.time_s = time_s;
  row.samples = registry_.snapshot().samples;
  push_row(std::move(row));
}

void TimeSeriesRecorder::push_row(Row row) {
  std::lock_guard lock(mutex_);
  ring_[next_] = std::move(row);
  next_ = (next_ + 1) % ring_.size();
  count_ = std::min(count_ + 1, ring_.size());
  ++total_;
}

std::size_t TimeSeriesRecorder::rows() const {
  std::lock_guard lock(mutex_);
  return count_;
}

std::uint64_t TimeSeriesRecorder::total_samples() const {
  std::lock_guard lock(mutex_);
  return total_;
}

std::vector<TimeSeriesRecorder::Row> TimeSeriesRecorder::series() const {
  std::lock_guard lock(mutex_);
  std::vector<Row> out;
  out.reserve(count_);
  // Oldest row first: when full, the slot about to be overwritten is oldest.
  const std::size_t first = count_ == ring_.size() ? next_ : 0;
  for (std::size_t i = 0; i < count_; ++i)
    out.push_back(ring_[(first + i) % ring_.size()]);
  return out;
}

void TimeSeriesRecorder::write_csv(std::ostream& os) const {
  const std::vector<Row> series_copy = series();
  // Columns: union of metric names, in first-appearance order.
  std::vector<std::string> columns;
  for (const Row& row : series_copy) {
    for (const MetricSample& s : row.samples) {
      if (std::find(columns.begin(), columns.end(), s.name) == columns.end())
        columns.push_back(s.name);
    }
  }
  os << "time_s";
  for (const std::string& c : columns) os << ',' << c;
  os << '\n';
  for (const Row& row : series_copy) {
    os << row.time_s;
    for (const std::string& c : columns) {
      os << ',';
      for (const MetricSample& s : row.samples) {
        if (s.name == c) {
          os << s.value;
          break;
        }
      }
    }
    os << '\n';
  }
}

void TimeSeriesRecorder::write_json(std::ostream& os) const {
  const std::vector<Row> series_copy = series();
  os << "{\"interval_s\":" << config_.interval_s << ",\"rows\":[";
  bool first_row = true;
  for (const Row& row : series_copy) {
    if (!first_row) os << ',';
    first_row = false;
    os << "{\"time_s\":" << row.time_s << ",\"metrics\":{";
    bool first = true;
    for (const MetricSample& s : row.samples) {
      if (!first) os << ',';
      first = false;
      os << '"' << json_escape(s.name) << "\":";
      if (std::isfinite(s.value)) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", s.value);
        os << buf;
      } else {
        os << 0;
      }
    }
    os << "}}";
  }
  os << "]}";
}

}  // namespace automdt::telemetry
