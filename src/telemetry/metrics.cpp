#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace automdt::telemetry {

double MetricsSnapshot::value_or(std::string_view name, double fallback) const {
  for (const MetricSample& s : samples)
    if (s.name == name) return s.value;
  return fallback;
}

bool MetricsSnapshot::has(std::string_view name) const {
  for (const MetricSample& s : samples)
    if (s.name == name) return true;
  return false;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// JSON has no NaN/Inf literals; clamp to null-safe numbers.
void write_json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  // Integral values (the common case: counters) print without a fraction.
  if (v == std::floor(v) && std::abs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    os << buf;
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
  }
}

}  // namespace

void write_snapshot_json(std::ostream& os, const MetricsSnapshot& snapshot) {
  os << "{\"generation\":" << snapshot.generation << ",\"uptime_s\":";
  write_json_number(os, snapshot.uptime_s);
  os << ",\"metrics\":{";
  bool first = true;
  for (const MetricSample& s : snapshot.samples) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(s.name) << "\":";
    write_json_number(os, s.value);
  }
  os << "}}";
}

MetricsRegistry::MetricsRegistry() : start_(Clock::now()) {}

MetricsRegistry::Entry* MetricsRegistry::find_locked(const std::string& name,
                                                     Kind kind) {
  for (Entry& e : entries_)
    if (e.kind == kind && e.name == name) return &e;
  return nullptr;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  if (Entry* e = find_locked(name, Kind::kCounter); e && e->counter)
    return e->counter;
  Counter& c = counters_.emplace_back();
  entries_.push_back({name, Kind::kCounter, &c, nullptr, nullptr, {}});
  return &c;
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  if (Entry* e = find_locked(name, Kind::kGauge); e && e->gauge)
    return e->gauge;
  Gauge& g = gauges_.emplace_back();
  entries_.push_back({name, Kind::kGauge, nullptr, &g, nullptr, {}});
  return &g;
}

LogLinearHistogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  if (Entry* e = find_locked(name, Kind::kHistogram); e && e->histogram)
    return e->histogram;
  LogLinearHistogram& h = histograms_.emplace_back();
  entries_.push_back({name, Kind::kHistogram, nullptr, nullptr, &h, {}});
  return &h;
}

void MetricsRegistry::register_callback(const std::string& name,
                                        std::function<double()> fn) {
  std::lock_guard lock(mutex_);
  for (Entry& e : entries_) {
    if (e.name == name && e.kind == Kind::kCallback) {
      e.callback = std::move(fn);
      return;
    }
  }
  entries_.push_back({name, Kind::kCallback, nullptr, nullptr, nullptr,
                      std::move(fn)});
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  snap.generation = generation_.fetch_add(1, std::memory_order_relaxed) + 1;
  snap.uptime_s =
      std::chrono::duration<double>(Clock::now() - start_).count();
  snap.samples.reserve(entries_.size() + histograms_.size() * 5);
  for (const Entry& e : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        snap.samples.push_back(
            {e.name, static_cast<double>(e.counter->value())});
        break;
      case Kind::kGauge:
        snap.samples.push_back({e.name, e.gauge->value()});
        break;
      case Kind::kCallback:
        snap.samples.push_back({e.name, e.callback ? e.callback() : 0.0});
        break;
      case Kind::kHistogram: {
        const HistogramSnapshot h = e.histogram->snapshot();
        snap.samples.push_back(
            {e.name + ".count", static_cast<double>(h.count)});
        snap.samples.push_back({e.name + ".mean", h.mean()});
        snap.samples.push_back({e.name + ".p50", h.percentile(50.0)});
        snap.samples.push_back({e.name + ".p90", h.percentile(90.0)});
        snap.samples.push_back({e.name + ".p99", h.percentile(99.0)});
        snap.samples.push_back(
            {e.name + ".max", static_cast<double>(h.max_value())});
        break;
      }
    }
  }
  return snap;
}

void MetricsRegistry::visit(Visitor& visitor) const {
  std::lock_guard lock(mutex_);
  for (const Entry& e : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        visitor.on_counter(e.name, e.counter->value());
        break;
      case Kind::kGauge:
        visitor.on_gauge(e.name, e.gauge->value());
        break;
      case Kind::kCallback:
        visitor.on_gauge(e.name, e.callback ? e.callback() : 0.0);
        break;
      case Kind::kHistogram:
        visitor.on_histogram(e.name, e.histogram->snapshot());
        break;
    }
  }
}

double MetricsRegistry::uptime_s() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (Counter& c : counters_) c.reset();
  for (Gauge& g : gauges_) g.reset();
  for (LogLinearHistogram& h : histograms_) h.reset();
}

std::size_t MetricsRegistry::metric_count() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry instance;
  return instance;
}

}  // namespace automdt::telemetry
