// TimeSeriesRecorder: periodic registry snapshots into an in-memory ring.
//
// The paper logs ⟨thread counts, per-stage throughputs⟩ once per second
// (§IV-A) and tunes from that series; this recorder generalizes the habit to
// every registered metric. start() samples at a configurable cadence
// (default 1 s, the paper's logging interval) from a background thread;
// sample_now()/sample_at() drive it manually (probe replay, per-update PPO
// series, tests). Rows land in a fixed-capacity ring — a day of 1 Hz samples
// is bounded memory, and a monitor that shows the last N minutes never cares
// about more.
//
// Exports: CSV (one column per metric, in registration order — the shared
// schema for probe logs, bench output, and monitor dumps) and JSON (rows of
// {"time_s":..., "metrics":{...}}).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <thread>
#include <vector>

#include "telemetry/metrics.hpp"

namespace automdt::telemetry {

struct RecorderConfig {
  double interval_s = 1.0;      // paper §IV-A logging cadence
  std::size_t capacity = 600;   // ring rows (paper: one 10-minute probe run)
};

class TimeSeriesRecorder {
 public:
  struct Row {
    double time_s = 0.0;
    std::vector<MetricSample> samples;
  };

  explicit TimeSeriesRecorder(MetricsRegistry& registry,
                              RecorderConfig config = {});
  ~TimeSeriesRecorder();

  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  /// Begin background sampling every interval_s. Idempotent.
  void start();

  /// Stop the background thread (rows are kept). Idempotent; run by ~.
  void stop();

  /// Take one sample now, stamped with seconds since construction/start.
  void sample_now();

  /// Take one sample with an explicit timestamp (virtual-time callers:
  /// probe replay, per-update training series).
  void sample_at(double time_s);

  /// Rows currently held (<= capacity).
  std::size_t rows() const;

  /// Total samples ever taken, including rows the ring has overwritten.
  std::uint64_t total_samples() const;

  /// Copy of the ring, oldest row first.
  std::vector<Row> series() const;

  /// `time_s,<metric>,...` — columns in first-appearance (registration)
  /// order; a metric registered after earlier rows gets empty cells there.
  void write_csv(std::ostream& os) const;

  /// `{"interval_s":...,"rows":[{"time_s":...,"metrics":{...}},...]}`
  void write_json(std::ostream& os) const;

  const RecorderConfig& config() const { return config_; }

 private:
  void run();
  void push_row(Row row);

  using Clock = std::chrono::steady_clock;

  MetricsRegistry& registry_;
  RecorderConfig config_;
  Clock::time_point start_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Row> ring_;       // capacity slots, circular
  std::size_t next_ = 0;        // ring write position
  std::size_t count_ = 0;       // filled slots (<= capacity)
  std::uint64_t total_ = 0;
  bool running_ = false;
  std::thread sampler_;
};

}  // namespace automdt::telemetry
