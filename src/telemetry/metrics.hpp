// Metrics registry: named lock-free counters/gauges/histograms, sampled as
// one consistent-enough snapshot.
//
// The paper's premise (§IV-A) is that the agent's online signal — per-stage
// throughputs and buffer occupancies sampled every second — is cheap enough
// to collect without perturbing the transfer. This registry is that
// telemetry plane made first-class:
//
//   Counter / Gauge        — one relaxed atomic each; add()/set() from any
//                            worker thread costs a single uncontended RMW or
//                            store, never a lock.
//   LogLinearHistogram     — per-stage latency/size distributions
//                            (histogram.hpp), registered by name like any
//                            other metric; snapshots flatten them into
//                            .count/.p50/.p90/.p99/.max/.mean samples.
//   callbacks              — polled gauges for state owned elsewhere (queue
//                            occupancy, stream counts); evaluated only at
//                            snapshot time, so components export existing
//                            atomics without restructuring.
//
// Memory model: registration takes the registry mutex (rare, cold);
// recording touches only the metric's own relaxed atomics; snapshot() holds
// the mutex against concurrent *registration* while it samples every metric
// once, in registration order, and stamps the result with a monotonically
// increasing generation. Registration order is therefore the tool for
// cross-metric monotonicity: registering downstream counters before
// upstream ones makes pipeline invariants (bytes_written <= bytes_sent <=
// bytes_read) hold in every snapshot, because a later-sampled monotone
// counter can only be larger. The transfer engine leans on exactly this to
// fix TransferStats snapshot tearing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/histogram.hpp"

namespace automdt::telemetry {

/// Monotone event counter. add() returns the post-add value so callers that
/// gate on "this was the N-th event" (e.g. last-chunk detection) need no
/// second load.
class Counter {
 public:
  std::uint64_t add(std::uint64_t n = 1) {
    return value_.fetch_add(n, std::memory_order_relaxed) + n;
  }
  void sub(std::uint64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value gauge (double payload).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct MetricSample {
  std::string name;
  double value = 0.0;
};

/// One pass over every registered metric. `generation` increases by one per
/// snapshot taken from the same registry, so consumers (TransferStats, the
/// kStatsSnapshot RPC) can order and dedupe dumps.
struct MetricsSnapshot {
  std::uint64_t generation = 0;
  double uptime_s = 0.0;  // seconds since the registry was created
  std::vector<MetricSample> samples;

  double value_or(std::string_view name, double fallback = 0.0) const;
  bool has(std::string_view name) const;
};

/// Escape for JSON string literals (quotes, backslash, control chars).
std::string json_escape(std::string_view s);

/// `{"generation":N,"uptime_s":T,"metrics":{"name":value,...}}`
void write_snapshot_json(std::ostream& os, const MetricsSnapshot& snapshot);

class MetricsRegistry {
 public:
  MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. Returned pointers are stable for the registry's
  /// lifetime; registering the same name twice returns the same metric.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  LogLinearHistogram* histogram(const std::string& name);

  /// Polled gauge: `fn` runs at snapshot time (keep it cheap and
  /// thread-safe). Re-registering a name replaces the callback.
  void register_callback(const std::string& name, std::function<double()> fn);

  /// Sample every metric once, in registration order.
  MetricsSnapshot snapshot() const;

  /// Typed walk over every registered metric, in registration order, holding
  /// the registry mutex (blocks registration, not recording). Unlike
  /// snapshot(), histograms are delivered raw — the OpenMetrics exposition
  /// (openmetrics.cpp) needs real bucket counts, not flattened quantiles.
  /// Callbacks are evaluated and delivered as gauges.
  class Visitor {
   public:
    virtual ~Visitor() = default;
    virtual void on_counter(const std::string& name, std::uint64_t value) = 0;
    virtual void on_gauge(const std::string& name, double value) = 0;
    virtual void on_histogram(const std::string& name,
                              const HistogramSnapshot& snapshot) = 0;
  };
  void visit(Visitor& visitor) const;

  /// Seconds since the registry was created (same clock as snapshots).
  double uptime_s() const;

  /// Zero every owned counter/gauge/histogram (callbacks are untouched).
  void reset();

  std::size_t metric_count() const;

  /// Process-wide default instance (trainer, ad-hoc instrumentation).
  /// Components with a natural owner (one TransferSession) use their own.
  static MetricsRegistry& global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kCallback };

  struct Entry {
    std::string name;
    Kind kind;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    LogLinearHistogram* histogram = nullptr;
    std::function<double()> callback;
  };

  Entry* find_locked(const std::string& name, Kind kind);

  using Clock = std::chrono::steady_clock;

  mutable std::mutex mutex_;
  // Deques: stable element addresses across growth.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<LogLinearHistogram> histograms_;
  std::vector<Entry> entries_;  // registration order
  mutable std::atomic<std::uint64_t> generation_{0};
  Clock::time_point start_;
};

}  // namespace automdt::telemetry
