#include "telemetry/flight_recorder.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>

#include "common/logging.hpp"
#include "telemetry/trace.hpp"

namespace automdt::telemetry {
namespace {

std::string wall_clock_stamp() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm_buf{};
#if defined(_WIN32)
  gmtime_s(&tm_buf, &now);
#else
  gmtime_r(&now, &tm_buf);
#endif
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y%m%dT%H%M%SZ", &tm_buf);
  return buf;
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderConfig config,
                               const MetricsRegistry* registry,
                               const EventJournal* journal)
    : config_(std::move(config)), registry_(registry), journal_(journal) {}

void FlightRecorder::write(std::ostream& os, std::string_view reason) const {
  os << "=== automdt flight recorder dump ===\n";
  os << "reason: " << reason << "\n";
  os << "wall_time_utc: " << wall_clock_stamp() << "\n";
  os << "steady_ns: " << now_ns() << "\n";
  if (const MetricsRegistry* reg =
          registry_.load(std::memory_order_acquire)) {
    os << "\n--- metrics snapshot ---\n";
    write_snapshot_json(os, reg->snapshot());
    os << "\n";
  }
  if (journal_ != nullptr) {
    os << "\n--- event journal tail (last " << config_.journal_tail
       << ", " << journal_->appended() << " total, " << journal_->dropped()
       << " dropped) ---\n";
    journal_->dump(os, config_.journal_tail);
  }
  os << "=== end of dump ===\n";
}

std::string FlightRecorder::dump(std::string_view reason) {
  std::lock_guard lock(mutex_);
  const std::uint64_t n = dumps_.load(std::memory_order_relaxed);
  std::ostringstream path;
  path << config_.out_dir << "/" << config_.prefix << "-" << wall_clock_stamp()
       << "-" << n << ".log";
  std::ofstream f(path.str());
  if (!f) {
    LOG_ERROR("flight recorder: cannot open dump file " << path.str());
    return "";
  }
  write(f, reason);
  f.flush();
  if (!f) return "";
  dumps_.store(n + 1, std::memory_order_relaxed);
  last_path_ = path.str();
  LOG_WARN("flight recorder dump written: " << last_path_
                                            << " (reason: " << reason << ")");
  return last_path_;
}

std::string FlightRecorder::last_path() const {
  std::lock_guard lock(mutex_);
  return last_path_;
}

PipelineWatchdog::PipelineWatchdog(WatchdogConfig config, ProgressFn progress,
                                   FlightRecorder* recorder)
    : config_(config), progress_(std::move(progress)), recorder_(recorder) {}

PipelineWatchdog::~PipelineWatchdog() { stop(); }

void PipelineWatchdog::start() {
  std::lock_guard lock(mutex_);
  if (running_) return;
  running_ = true;
  thread_ = std::thread([this] { loop(); });
}

void PipelineWatchdog::stop() {
  {
    std::lock_guard lock(mutex_);
    if (!running_) return;
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void PipelineWatchdog::rearm() { armed_.store(true, std::memory_order_relaxed); }

void PipelineWatchdog::loop() {
  const auto poll = std::chrono::duration<double>(config_.poll_interval_s);
  std::optional<std::uint64_t> last_value;
  std::uint64_t stalled_since_ns = 0;

  std::unique_lock lock(mutex_);
  while (running_) {
    cv_.wait_for(lock, poll, [this] { return !running_; });
    if (!running_) break;
    lock.unlock();

    const std::optional<std::uint64_t> value = progress_();
    const std::uint64_t t = now_ns();
    if (!value.has_value() || value != last_value) {
      // Idle, done, or advancing: reset the timer, and re-arm if a previous
      // stall resolved itself so a *new* stall dumps again.
      if (last_value.has_value() && value.has_value() && value != last_value) {
        armed_.store(true, std::memory_order_relaxed);
      }
      last_value = value;
      stalled_since_ns = t;
    } else if (t - stalled_since_ns >=
               static_cast<std::uint64_t>(config_.stall_after_s * 1e9)) {
      if (armed_.exchange(false, std::memory_order_relaxed)) {
        stalls_.fetch_add(1, std::memory_order_relaxed);
        std::ostringstream reason;
        reason << "pipeline stall: no progress past " << *value << " for "
               << config_.stall_after_s << "s with work remaining";
        if (config_.context_fn) {
          const std::string context = config_.context_fn();
          if (!context.empty()) reason << "; " << context;
        }
        LOG_ERROR(reason.str());
        if (recorder_ != nullptr) recorder_->dump(reason.str());
      }
    }

    lock.lock();
  }
}

}  // namespace automdt::telemetry
