#include "telemetry/journal.hpp"

#include <algorithm>
#include <thread>

#include "telemetry/trace.hpp"

namespace automdt::telemetry {
namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 64;
  while (p < n) p <<= 1;
  return p;
}

std::uint32_t thread_tag() {
  // A stable small tag per thread; the hash is only for display, collisions
  // are cosmetic.
  const auto h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return static_cast<std::uint32_t>(h ^ (h >> 32)) & 0xFFFF;
}

}  // namespace

EventJournal::EventJournal(std::size_t capacity)
    : slots_n_(round_up_pow2(capacity)),
      mask_(slots_n_ - 1),
      slots_(std::make_unique<Slot[]>(slots_n_)) {}

void EventJournal::append(LogLevel level, std::string_view text) {
  const std::uint64_t ticket =
      cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  // Per-slot version lock: claim with one CAS. Losing it means another
  // writer lapped the whole ring onto this slot mid-claim; drop rather than
  // spin — the journal must never backpressure the thread that logs.
  std::uint64_t v = slot.version.load(std::memory_order_relaxed);
  if ((v & 1) != 0 ||
      !slot.version.compare_exchange_strong(v, v + 1,
                                            std::memory_order_acquire,
                                            std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slot.seq.store(ticket, std::memory_order_relaxed);
  slot.t_ns.store(now_ns(), std::memory_order_relaxed);
  slot.thread.store(thread_tag(), std::memory_order_relaxed);
  slot.level.store(static_cast<std::uint8_t>(level),
                   std::memory_order_relaxed);
  const std::size_t n = std::min(text.size(), kTextBytes - 1);
  for (std::size_t i = 0; i < n; ++i)
    slot.text[i].store(text[i], std::memory_order_relaxed);
  slot.length.store(static_cast<std::uint16_t>(n), std::memory_order_relaxed);
  slot.version.store(v + 2, std::memory_order_release);
}

std::vector<JournalEvent> EventJournal::tail(std::size_t max_events) const {
  std::vector<JournalEvent> out;
  out.reserve(std::min(max_events, slots_n_));
  for (std::size_t i = 0; i < slots_n_; ++i) {
    const Slot& slot = slots_[i];
    const std::uint64_t v1 = slot.version.load(std::memory_order_acquire);
    if (v1 == 0 || (v1 & 1) != 0) continue;  // empty or mid-write
    JournalEvent e;
    e.seq = slot.seq.load(std::memory_order_relaxed);
    e.t_ns = slot.t_ns.load(std::memory_order_relaxed);
    e.thread = slot.thread.load(std::memory_order_relaxed);
    e.level = static_cast<LogLevel>(slot.level.load(std::memory_order_relaxed));
    const std::size_t n = std::min<std::size_t>(
        slot.length.load(std::memory_order_relaxed), kTextBytes - 1);
    e.text.resize(n);
    for (std::size_t j = 0; j < n; ++j)
      e.text[j] = slot.text[j].load(std::memory_order_relaxed);
    // Torn-read check: if a writer touched the slot during the copy, the
    // version moved — discard rather than surface a spliced record.
    if (slot.version.load(std::memory_order_acquire) != v1) continue;
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const JournalEvent& a, const JournalEvent& b) {
              return a.seq < b.seq;
            });
  if (out.size() > max_events)
    out.erase(out.begin(),
              out.end() - static_cast<std::ptrdiff_t>(max_events));
  return out;
}

void EventJournal::dump(std::ostream& os, std::size_t max_events) const {
  const std::vector<JournalEvent> events = tail(max_events);
  const std::uint64_t t0 = events.empty() ? 0 : events.front().t_ns;
  for (const JournalEvent& e : events) {
    os << e.seq << "  +" << static_cast<double>(e.t_ns - t0) / 1e6 << "ms  ["
       << log_level_tag(e.level) << "] [t" << e.thread << "] " << e.text
       << "\n";
  }
  const std::uint64_t drops = dropped();
  if (drops > 0) os << "(" << drops << " event(s) dropped on collision)\n";
}

void install_log_journal(EventJournal* journal) { set_log_sink(journal); }

}  // namespace automdt::telemetry
