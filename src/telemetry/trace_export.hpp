// Chrome trace-event JSON export for cross-stage timelines.
//
// One TraceExporter collects duration spans from every instrumented
// component — sampled chunk lifecycles from the transfer engine, PPO trainer
// phases (rollout / GAE / update), controller intervals from the transfer
// runner — and writes them as a single Chrome trace-event file
// (chrome://tracing, Perfetto, speedscope all read it). Tracks map onto the
// trace viewer's process/thread hierarchy: a "process" per pipeline end
// (sender / receiver / trainer) and a "thread" per stage, registered up
// front so the metadata events land before any span.
//
// Concurrency: emit() appends under a mutex. That is deliberate — spans are
// only emitted for the sampled 1-in-N chunk minority and for coarse trainer
// phases, so the exporter is never on the per-chunk hot path (the journal in
// journal.hpp is the lock-free component). The buffer is bounded: past
// max_events further spans are dropped and counted, so a runaway trace can
// not eat the heap mid-transfer.
//
// Timestamps are steady-clock nanoseconds (telemetry::now_ns); the writer
// converts to the microsecond doubles the trace-event format wants and
// rebases onto the earliest event so files start near ts=0. Receiver-side
// spans for wire-stamped chunks are already offset-corrected into the local
// timebase by the engine (clock_sync.hpp) before they reach the exporter.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace automdt::telemetry {

class TraceExporter {
 public:
  explicit TraceExporter(std::size_t max_events = 1u << 16);

  TraceExporter(const TraceExporter&) = delete;
  TraceExporter& operator=(const TraceExporter&) = delete;

  /// Register a (process, thread) track; returns its id for emit(). The same
  /// pair registers once — repeated calls return the existing id.
  int track(const std::string& process, const std::string& thread);

  /// One complete ("ph":"X") span on `track`. `id`, when non-empty, lands in
  /// args.chunk so spans of one chunk correlate across tracks; `args_json`,
  /// when non-empty, must be extra `"key":value` pairs (no braces).
  void emit(int track, std::string_view name, std::uint64_t start_ns,
            std::uint64_t duration_ns, std::string_view id = {},
            std::string_view args_json = {});

  /// One instant ("ph":"i") marker on `track`.
  void instant(int track, std::string_view name, std::uint64_t ts_ns);

  std::size_t events() const;
  std::uint64_t dropped() const;

  /// Serialize everything collected so far as one Chrome trace JSON object.
  void write_chrome_json(std::ostream& os) const;

  /// write_chrome_json to `path`; false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  struct Track {
    std::string process;
    std::string thread;
    int pid = 0;  // trace-viewer process id (1-based, per distinct process)
    int tid = 0;  // trace-viewer thread id (1-based within the process)
  };

  struct Event {
    int track = 0;
    bool instant = false;
    std::uint64_t start_ns = 0;
    std::uint64_t duration_ns = 0;
    std::string name;
    std::string id;
    std::string args_json;
  };

  std::size_t max_events_;
  mutable std::mutex mutex_;
  std::vector<Track> tracks_;
  std::vector<Event> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace automdt::telemetry
