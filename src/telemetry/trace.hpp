// Chunk-lifecycle trace spans: sampling seam for hot-path instrumentation.
//
// The engine's per-chunk cost budget (DESIGN.md §9) leaves no room for a
// clock read and histogram record on every chunk, so tracing is sampled
// hdr-style: the reader stage asks the TraceSampler once per chunk (one
// relaxed fetch_add when sampling is configured, a single relaxed load when
// it is off) and stamps sampled chunks with a steady-clock timestamp carried
// in the chunk header. Downstream stages only check "is the stamp non-zero"
// and pay the clock+histogram cost for the sampled minority.
//
// Compile-time seam: configuring with -DAUTOMDT_TELEMETRY=OFF defines
// AUTOMDT_TELEMETRY_DISABLED, which flips kTraceCompiledIn to false; every
// trace block in the engine sits behind `if constexpr (kTraceCompiledIn)`,
// so the compiled-out build carries zero per-chunk telemetry instructions —
// the baseline bench_engine_hotpath's overhead table compares against.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "telemetry/metrics.hpp"

namespace automdt::telemetry {

#if defined(AUTOMDT_TELEMETRY_DISABLED)
inline constexpr bool kTraceCompiledIn = false;
#else
inline constexpr bool kTraceCompiledIn = true;
#endif

/// Steady-clock nanoseconds (monotonic within a process). 0 is reserved as
/// "not sampled" in chunk headers; the clock cannot realistically return it.
inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// 1-in-N sampling decision shared by concurrent workers. `every` = 0 turns
/// sampling off (one relaxed load per ask), 1 samples everything.
class TraceSampler {
 public:
  explicit TraceSampler(std::uint32_t every = 0) : every_(every) {}

  void set_every(std::uint32_t n) {
    every_.store(n, std::memory_order_relaxed);
  }
  std::uint32_t every() const {
    return every_.load(std::memory_order_relaxed);
  }

  bool should_sample() {
    const std::uint32_t n = every_.load(std::memory_order_relaxed);
    if (n == 0) return false;
    if (n == 1) return true;
    return counter_.fetch_add(1, std::memory_order_relaxed) % n == 0;
  }

 private:
  std::atomic<std::uint32_t> every_;
  std::atomic<std::uint64_t> counter_{0};
};

/// Non-negative span between two trace timestamps. steady_clock is
/// monotonic, so end < start can only mean a programming error (timestamps
/// from different epochs/processes); `skew` counts those instead of letting
/// a wrapped uint64 poison a histogram.
inline std::uint64_t span_ns(std::uint64_t start_ns, std::uint64_t end_ns,
                             Counter* skew = nullptr) {
  if (end_ns < start_ns) {
    if (skew) skew->add();
    return 0;
  }
  return end_ns - start_ns;
}

}  // namespace automdt::telemetry
