// OpenMetrics / Prometheus text exposition for a MetricsRegistry.
//
// The registry's dotted names are mapped onto the Prometheus data model
// (DESIGN.md §14):
//
//   read.bytes            -> automdt_read_bytes_total        (counter)
//   queue.occupancy       -> automdt_queue_occupancy         (gauge)
//   session.7.bytes_ok    -> automdt_session_bytes_ok_total{session="7"}
//   tenant.alice.rejects  -> automdt_tenant_rejects_total{tenant="alice"}
//   read.latency_ns       -> automdt_read_latency_ns_bucket{le="..."} series
//                            + _sum + _count                 (histogram)
//
// i.e. every name gets the `automdt_` prefix, characters outside
// [a-zA-Z0-9_:] become `_`, the per-session / per-tenant middle component is
// lifted into a label (escaped per the exposition format), samples of one
// family are grouped under a single `# TYPE` line, counters get the `_total`
// suffix, and `LogLinearHistogram`s render as cumulative `_bucket` series
// over their exact integer bucket upper bounds. Output ends with `# EOF`.
#pragma once

#include <string>
#include <string_view>

#include "telemetry/metrics.hpp"

namespace automdt::telemetry {

/// Family name + optional session/tenant label derived from a dotted
/// registry metric name. Exposed for tests.
struct OpenMetricsName {
  std::string family;       // sanitized, automdt_-prefixed, no type suffix
  std::string label_key;    // "session", "tenant", or empty
  std::string label_value;  // unescaped
};

OpenMetricsName openmetrics_name(std::string_view raw);

/// Escape a label value per the exposition format: backslash, double quote,
/// and newline.
std::string openmetrics_escape_label(std::string_view value);

/// Render the whole registry (counters, gauges, callbacks-as-gauges,
/// histograms) as OpenMetrics text, terminated by `# EOF`. Also emits
/// `automdt_uptime_seconds`. Safe to call while workers record.
std::string render_openmetrics(const MetricsRegistry& registry);

}  // namespace automdt::telemetry
