// Always-on per-worker stage time accounting.
//
// Each pipeline worker (reader / network / writer thread, serve-plane event
// loop or pool worker) owns one StageClock slot and records which of four
// states it is in:
//
//   busy               servicing its stage (reading, sending, verifying, ...)
//   blocked-upstream   waiting for input (staging-ring pop, work-ring pop)
//   blocked-downstream waiting for output (staging-ring push, token-bucket
//                      acquire, socket POLLOUT, admission defer)
//   parked             concurrency gate below this worker's id, epoll idle
//                      wait, or the worker has retired
//
// The design goal is zero cost on the unblocked hot path: transitions are
// *lazy*. A worker only calls enter() when an operation actually blocks
// (try_pop/try_push failed, the token bucket is throttled, the gate predicate
// is false), so a pipeline running at full speed performs no clock reads at
// all — busy time accumulates implicitly as `now - since` and is folded in by
// the reader at aggregation time. Each slot is single-writer (the owning
// thread) / multi-reader (metrics callbacks), all relaxed atomics, one cache
// line per worker so aggregation scans never bounce a hot line between
// workers (same discipline as the MetricsRegistry counters, DESIGN.md §8).
//
// Readers get totals that are accurate to within one in-flight transition;
// for the seconds-scale windows the BottleneckAttributor integrates over,
// that error is negligible (documented in DESIGN.md §14).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "telemetry/trace.hpp"

namespace automdt::telemetry {

enum class WorkerState : std::uint32_t {
  kBusy = 0,
  kBlockedUpstream = 1,
  kBlockedDownstream = 2,
  kParked = 3,
};

inline constexpr std::size_t kWorkerStateCount = 4;

inline const char* to_string(WorkerState state) {
  switch (state) {
    case WorkerState::kBusy: return "busy";
    case WorkerState::kBlockedUpstream: return "blocked-upstream";
    case WorkerState::kBlockedDownstream: return "blocked-downstream";
    case WorkerState::kParked: return "parked";
  }
  return "?";
}

/// Per-state nanosecond totals summed across a set of worker slots.
struct StageClockTotals {
  std::uint64_t busy_ns = 0;
  std::uint64_t blocked_upstream_ns = 0;
  std::uint64_t blocked_downstream_ns = 0;
  std::uint64_t parked_ns = 0;

  std::uint64_t state_ns(WorkerState state) const {
    switch (state) {
      case WorkerState::kBusy: return busy_ns;
      case WorkerState::kBlockedUpstream: return blocked_upstream_ns;
      case WorkerState::kBlockedDownstream: return blocked_downstream_ns;
      case WorkerState::kParked: return parked_ns;
    }
    return 0;
  }
};

/// One worker's clock. Single writer (the owning thread); any number of
/// concurrent readers via read_into(). Padded to a cache line.
class alignas(64) StageClock {
 public:
  StageClock() = default;
  StageClock(const StageClock&) = delete;
  StageClock& operator=(const StageClock&) = delete;

  /// Owner thread: begin accounting (state = busy). Until start() the slot
  /// contributes nothing, so pre-sized sets cost nothing for idle slots.
  void start() {
    state_.store(static_cast<std::uint32_t>(WorkerState::kBusy),
                 std::memory_order_relaxed);
    since_ns_.store(now_ns(), std::memory_order_relaxed);
  }

  /// Owner thread: transition to `next`, crediting the elapsed interval to
  /// the outgoing state. Returns the timestamp used, so callers that need a
  /// span around a blocking call (e.g. token-bucket throttle accounting) can
  /// reuse it without a second clock read.
  std::uint64_t enter(WorkerState next) {
    const std::uint64_t now = now_ns();
    const std::uint64_t since = since_ns_.load(std::memory_order_relaxed);
    if (since == 0) {  // enter() before start(): begin accounting here
      state_.store(static_cast<std::uint32_t>(next), std::memory_order_relaxed);
      since_ns_.store(now, std::memory_order_relaxed);
      return now;
    }
    const auto current = state_.load(std::memory_order_relaxed);
    acc_[current].fetch_add(now - since, std::memory_order_relaxed);
    state_.store(static_cast<std::uint32_t>(next), std::memory_order_relaxed);
    since_ns_.store(now, std::memory_order_relaxed);
    return now;
  }

  WorkerState state() const {
    return static_cast<WorkerState>(state_.load(std::memory_order_relaxed));
  }

  /// Reader: add this slot's per-state totals (completed intervals plus the
  /// in-progress one) into `totals`. Tolerates a concurrent transition: the
  /// worst case misattributes one interval boundary by one transition.
  void read_into(StageClockTotals& totals, std::uint64_t now) const {
    const std::uint64_t since = since_ns_.load(std::memory_order_relaxed);
    const auto current = state_.load(std::memory_order_relaxed);
    std::uint64_t acc[kWorkerStateCount];
    for (std::size_t i = 0; i < kWorkerStateCount; ++i)
      acc[i] = acc_[i].load(std::memory_order_relaxed);
    if (since != 0 && now > since) acc[current] += now - since;
    totals.busy_ns += acc[0];
    totals.blocked_upstream_ns += acc[1];
    totals.blocked_downstream_ns += acc[2];
    totals.parked_ns += acc[3];
  }

 private:
  std::array<std::atomic<std::uint64_t>, kWorkerStateCount> acc_{};
  std::atomic<std::uint32_t> state_{0};
  std::atomic<std::uint64_t> since_ns_{0};  // 0 = not started
};

/// Fixed set of worker slots for one stage (sized once before workers start;
/// slots are never reallocated, so worker threads hold stable pointers).
class StageClockSet {
 public:
  StageClockSet() = default;
  explicit StageClockSet(std::size_t slots) { resize(slots); }

  /// Not thread-safe; call before any worker uses a slot.
  void resize(std::size_t slots) {
    slots_ = std::make_unique<StageClock[]>(slots);
    count_ = slots;
  }

  std::size_t size() const { return count_; }

  StageClock& slot(std::size_t i) { return slots_[i]; }
  const StageClock& slot(std::size_t i) const { return slots_[i]; }

  /// Sum all slots as of `now` (defaults to a fresh clock read).
  StageClockTotals totals(std::uint64_t now = 0) const {
    if (now == 0) now = now_ns();
    StageClockTotals sum;
    for (std::size_t i = 0; i < count_; ++i) slots_[i].read_into(sum, now);
    return sum;
  }

 private:
  std::unique_ptr<StageClock[]> slots_;
  std::size_t count_ = 0;
};

}  // namespace automdt::telemetry
