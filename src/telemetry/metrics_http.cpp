#include "telemetry/metrics_http.hpp"

#include <cstring>
#include <utility>

namespace automdt::telemetry {
namespace {

// Content-Type per the OpenMetrics spec; Prometheus and curl both accept it.
constexpr char kContentType[] =
    "application/openmetrics-text; version=1.0.0; charset=utf-8";
constexpr std::size_t kMaxRequestBytes = 8192;

std::string http_response(const char* status, const std::string& body) {
  std::string out = "HTTP/1.1 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += kContentType;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(MetricsHttpServerConfig config,
                                     RenderFn render)
    : config_(std::move(config)), render_(std::move(render)) {}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

bool MetricsHttpServer::start() {
  if (started_) return true;
  listener_ = net::Listener::open(config_.host, config_.port);
  if (!listener_) return false;
  port_ = listener_->port();
  started_ = true;
  stopping_.store(false);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void MetricsHttpServer::accept_loop() {
  while (!stopping_.load()) {
    auto socket = listener_->accept(config_.accept_poll_s);
    if (!socket) continue;  // timeout poll, or woken by stop()
    std::lock_guard lock(connections_mutex_);
    if (stopping_.load()) return;  // stop() won the race; it joins us next
    net::Socket& slot = connections_.emplace_back(std::move(*socket));
    handlers_.emplace_back([this, s = &slot] { serve_connection(s); });
  }
}

void MetricsHttpServer::serve_connection(net::Socket* socket) {
  // Read until the end of the request head; scrape requests have no body.
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    std::size_t received = 0;
    const auto status =
        socket->read_some(buf, sizeof(buf), config_.io_timeout_s, &received);
    if (status != net::SocketStatus::kOk || received == 0) return;
    request.append(buf, received);
  }

  const std::size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) return;
  const std::string line = request.substr(0, line_end);

  std::string response;
  if (line.rfind("GET ", 0) != 0) {
    response = http_response("405 Method Not Allowed", "method not allowed\n");
  } else if (line.rfind("GET /metrics ", 0) == 0 ||
             line.rfind("GET /metrics?", 0) == 0) {
    response = http_response("200 OK", render_ ? render_() : "# EOF\n");
  } else {
    response = http_response("404 Not Found", "only /metrics is served\n");
  }
  if (socket->write_all(response.data(), response.size(),
                        config_.io_timeout_s) == net::SocketStatus::kOk)
    requests_.fetch_add(1);
  socket->shutdown_both();
}

void MetricsHttpServer::stop() {
  if (!started_) return;
  stopping_.store(true);
  listener_->shutdown();  // wakes a blocked accept()
  if (accept_thread_.joinable()) accept_thread_.join();
  std::deque<net::Socket> connections;
  std::vector<std::thread> handlers;
  {
    std::lock_guard lock(connections_mutex_);
    connections.swap(connections_);
    handlers.swap(handlers_);
  }
  for (net::Socket& socket : connections) socket.shutdown_both();
  for (std::thread& handler : handlers)
    if (handler.joinable()) handler.join();
  listener_->close();
  listener_.reset();
  started_ = false;
}

}  // namespace automdt::telemetry
