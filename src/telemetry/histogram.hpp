// Fixed-bucket log-linear histogram for latency/size distributions.
//
// Layout is HdrHistogram-style: values below 2^kSubBucketBits land in
// exact single-value buckets; above that, each power-of-two range is split
// into 2^kSubBucketBits linear sub-buckets, so relative error is bounded by
// 2^-kSubBucketBits (~3%) at any magnitude, with no dynamic allocation and
// no configuration. record() is one relaxed fetch_add into a fixed array
// (plus count/sum bookkeeping), so concurrent writers never contend on a
// lock — the property that lets the transfer engine record per-chunk
// service times from every worker thread.
//
// Queries go through snapshot(): a relaxed copy of the bucket array that
// percentile/max/mean are computed from, so a reader racing writers sees a
// (possibly slightly stale) consistent-enough distribution, never a torn
// quantile walk.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace automdt::telemetry {

struct HistogramSnapshot {
  std::vector<std::uint64_t> counts;  // dense, indexed by bucket
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  /// Value v such that at least p% of recorded values are <= v (upper edge
  /// of the covering bucket; exact for values in the linear region).
  /// p in [0, 100]. Returns 0 for an empty histogram.
  double percentile(double p) const;

  /// Upper edge of the highest non-empty bucket (0 if empty).
  std::uint64_t max_value() const;

  double mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
};

class LogLinearHistogram {
 public:
  static constexpr int kSubBucketBits = 5;
  static constexpr std::uint64_t kSubBucketCount = 1ull << kSubBucketBits;
  /// Linear region (2^B exact buckets) plus (64 - B) octaves of 2^B
  /// sub-buckets each: covers the full uint64 range.
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(64 - kSubBucketBits + 1) << kSubBucketBits;

  LogLinearHistogram()
      : counts_(std::make_unique<std::atomic<std::uint64_t>[]>(kBucketCount)) {
    for (std::size_t i = 0; i < kBucketCount; ++i)
      counts_[i].store(0, std::memory_order_relaxed);
  }

  LogLinearHistogram(const LogLinearHistogram&) = delete;
  LogLinearHistogram& operator=(const LogLinearHistogram&) = delete;

  void record(std::uint64_t value) {
    counts_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  HistogramSnapshot snapshot() const {
    HistogramSnapshot s;
    s.counts.resize(kBucketCount);
    // count/sum sampled before the buckets so s.count never exceeds the sum
    // of sampled bucket counts (percentile walks terminate).
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kBucketCount; ++i)
      s.counts[i] = counts_[i].load(std::memory_order_relaxed);
    return s;
  }

  void reset() {
    for (std::size_t i = 0; i < kBucketCount; ++i)
      counts_[i].store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

  /// Bucket that `value` is recorded into.
  static std::size_t bucket_index(std::uint64_t value) {
    if (value < kSubBucketCount) return static_cast<std::size_t>(value);
    const int exponent = 63 - std::countl_zero(value);
    const std::uint64_t sub =
        (value >> (exponent - kSubBucketBits)) - kSubBucketCount;
    return static_cast<std::size_t>(kSubBucketCount) +
           (static_cast<std::size_t>(exponent - kSubBucketBits)
            << kSubBucketBits) +
           static_cast<std::size_t>(sub);
  }

  /// Smallest value mapping to bucket `index`.
  static std::uint64_t bucket_lower(std::size_t index) {
    if (index < kSubBucketCount) return index;
    const std::size_t group = (index - kSubBucketCount) >> kSubBucketBits;
    const std::uint64_t sub = (index - kSubBucketCount) & (kSubBucketCount - 1);
    return (kSubBucketCount + sub) << group;
  }

  /// Largest value mapping to bucket `index`.
  static std::uint64_t bucket_upper(std::size_t index) {
    if (index + 1 >= kBucketCount) return ~0ull;
    return bucket_lower(index + 1) - 1;
  }

 private:
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

inline double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  const auto target = static_cast<std::uint64_t>(
      p / 100.0 * static_cast<double>(count) + 0.5);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= target && cumulative > 0)
      return static_cast<double>(LogLinearHistogram::bucket_upper(i));
  }
  return static_cast<double>(max_value());
}

inline std::uint64_t HistogramSnapshot::max_value() const {
  for (std::size_t i = counts.size(); i-- > 0;)
    if (counts[i] > 0) return LogLinearHistogram::bucket_upper(i);
  return 0;
}

}  // namespace automdt::telemetry
