// automdt — command-line front end for the library.
//
// Subcommands:
//   list-presets                      show built-in testbed scenarios
//   explore  --preset P [...]         run the §IV-A exploration phase and
//                                     print link estimates
//   train    --preset P --out CKPT    full offline pipeline -> checkpoint
//   transfer --preset P [--ckpt F]    run a production transfer under a
//                                     chosen controller
//   info     --ckpt F                 inspect a checkpoint
//   serve    [--telemetry-port P]     loop real TCP-backend transfers and
//                                     serve kStatsSnapshot on port P
//   monitor  --port P [--once]        poll a serve/DtnPair telemetry port;
//                                     render 1 Hz per-stage throughput,
//                                     queue occupancy, and latency
//                                     percentiles (--once: one JSON dump;
//                                     --bottleneck: live stage-clock
//                                     attribution view)
//
// Common options:
//   --config FILE      key=value overrides (see core/config_bindings.hpp)
//   --seed N           master seed (default 1234)
//   --episodes N       PPO episode cap
//   --threads N        worker threads for training math (0 = all cores,
//                      1 = serial; never changes results)
//   --envs N           simulator envs stepped concurrently during training
//                      (results depend on the env count, not on --threads)
//   --files N          dataset file count        (transfer)
//   --size-mb M        file size in MB           (transfer)
//   --mixed            log-uniform 100KB..2GB mixed dataset (transfer)
//   --controller C     automdt|marlin|globus|jointgd|monolithic|oracle
//   --csv FILE         write the per-second transfer trace
//
// Telemetry options:
//   --telemetry-csv FILE    (train) per-update PPO diagnostics series
//   --telemetry-port P      (serve) kStatsSnapshot listen port (default 28765)
//   --telemetry-sample N    (serve) trace 1 chunk in N (default 128, 0 = off)
//   --io-backend B          (serve) storage/socket I/O backend: syscall
//                           (default) or uring — a uring request on a kernel
//                           without io_uring degrades gracefully; the
//                           io.backend_uring gauge reports what actually ran
//                           (engine.* --config keys override more knobs, see
//                           core/config_bindings.hpp)
//   --duration S            (serve) keep transferring for S seconds
//   --concurrency C         (serve) per-stage worker threads
//   --port P / --host H     (monitor) endpoint to poll
//   --interval S            (monitor) poll cadence (default 1 s)
//   --once                  (monitor) print one JSON snapshot and exit
//   --timeout S             (monitor) snapshot wait budget (default 5 s)
//   --bottleneck            (monitor) render the serve side's online
//                           bottleneck attribution (pipeline.bottleneck +
//                           per-stage busy/blocked fractions from the stage
//                           clocks); one line with --once, a ticker otherwise
//   --metrics-port P        (serve|transfer|train) OpenMetrics HTTP endpoint:
//                           GET /metrics returns the live registry in
//                           Prometheus/OpenMetrics text, e.g.
//                           curl -s localhost:P/metrics
//
// Tracing / flight-recorder options:
//   --trace-out FILE        (train|transfer|serve) write a Chrome trace-event
//                           JSON (chrome://tracing, Perfetto). On serve it
//                           also turns wire stamping on, so sampled chunks
//                           carry correlated sender/receiver spans.
//   --flight-dir DIR        (serve) flight-recorder dump directory (default .)
//   --watchdog-seconds S    (serve) dump after S seconds without byte
//                           progress while work remains (default 1)
//   --inject-reader-stall N (serve) fault injection: after N claimed chunks
//                           one reader sleeps --stall-seconds (default 3),
//                           so the watchdog path is testable on demand
//
// Serve-plane options (serve --max-sessions N switches to the many-tenant
// session server; without it the single-session loop above runs unchanged):
//   --max-sessions N        session-registry capacity (opens the serve plane)
//   --worker-threads N      fixed chunk-processing pool size (default 4);
//   --event-loops N         sharded epoll loops; connections pin to a loop
//                           by tenant hash (default 1);
//                           total threads stay N+1 regardless of sessions
//   --sessions N            concurrent loopback driver sessions (default 32)
//   --tenant-quota SPEC     per-tenant fair-share admission, SPEC =
//                           name=max_sessions:max_buffer_mb:rate_mbps[,...]
//                           (0 = unlimited); drivers spread sessions across
//                           the named tenants round-robin
//   --chunk-kb K            driver chunk size (default 64)
//   --arena-blocks N        shared receive-arena blocks (default 64)
//   --list-sessions         (monitor) one snapshot rendered as a per-session
//                           table (state, in-flight, verified bytes)
//
// Examples:
//   automdt train --preset fabric --episodes 6000 --out /tmp/fabric.ckpt
//   automdt transfer --preset fabric --ckpt /tmp/fabric.ckpt
//       --files 100 --size-mb 1000 --csv /tmp/run.csv     (one line)
//   automdt transfer --preset read --controller marlin --files 20
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>

#include "common/csv.hpp"
#include "common/logging.hpp"
#include "core/automdt.hpp"
#include "core/config_bindings.hpp"
#include "optimizers/joint_gd_controller.hpp"
#include "optimizers/marlin_controller.hpp"
#include "optimizers/monolithic_controller.hpp"
#include "optimizers/runner.hpp"
#include "optimizers/static_controller.hpp"
#include "serve/session_client.hpp"
#include "serve/session_server.hpp"
#include "telemetry/clock_sync.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/journal.hpp"
#include "telemetry/metrics_http.hpp"
#include "telemetry/openmetrics.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/stats_server.hpp"
#include "telemetry/trace_export.hpp"
#include "testbed/presets.hpp"
#include "transfer/engine.hpp"

using namespace automdt;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  bool flag(const std::string& name) const { return options.count(name) > 0; }
  std::string get(const std::string& name, const std::string& fallback) const {
    const auto it = options.find(name);
    return it != options.end() ? it->second : fallback;
  }
  long long get_int(const std::string& name, long long fallback) const {
    const auto it = options.find(name);
    return it != options.end() ? std::stoll(it->second) : fallback;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      throw std::runtime_error("unexpected argument: " + a);
    }
    a = a.substr(2);
    // Flags with no value take "1"; otherwise consume the next token.
    static const std::set<std::string> flags = {
        "mixed", "paper", "deterministic", "once", "list-sessions",
        "bottleneck"};
    if (flags.count(a)) {
      args.options.insert_or_assign(a, "1");
    } else {
      if (i + 1 >= argc)
        throw std::runtime_error("option --" + a + " needs a value");
      args.options[a] = argv[++i];
    }
  }
  return args;
}

// --trace-out: flush the collected spans as Chrome trace-event JSON.
// Returns false (and complains) on I/O failure.
bool write_trace(const telemetry::TraceExporter& exporter,
                 const std::string& path) {
  if (!exporter.write_file(path)) {
    std::fprintf(stderr, "failed to write trace %s\n", path.c_str());
    return false;
  }
  std::printf("trace written to %s (%zu events, %llu dropped)\n", path.c_str(),
              exporter.events(),
              static_cast<unsigned long long>(exporter.dropped()));
  return true;
}

// --metrics-port P: spin up the OpenMetrics GET /metrics responder over the
// given render function. Returns null when the flag is absent; throws when
// the port cannot be bound (all callers treat that as fatal).
std::unique_ptr<telemetry::MetricsHttpServer> start_metrics_http(
    const Args& args, telemetry::MetricsHttpServer::RenderFn render) {
  if (!args.flag("metrics-port")) return nullptr;
  telemetry::MetricsHttpServerConfig config;
  config.port = static_cast<std::uint16_t>(args.get_int("metrics-port", 0));
  auto server = std::make_unique<telemetry::MetricsHttpServer>(
      config, std::move(render));
  if (!server->start()) {
    throw std::runtime_error("cannot bind metrics port " +
                             args.get("metrics-port", "0"));
  }
  std::printf("metrics: curl -s http://127.0.0.1:%u/metrics\n",
              server->port());
  return server;
}

testbed::ScenarioPreset preset_by_name(const std::string& name) {
  if (name == "fabric") return testbed::fabric_ncsa_tacc();
  if (name == "cloudlab") return testbed::cloudlab_1g();
  if (name == "read") return testbed::bottleneck_read();
  if (name == "network") return testbed::bottleneck_network();
  if (name == "write") return testbed::bottleneck_write();
  throw std::runtime_error(
      "unknown preset '" + name +
      "' (expected fabric|cloudlab|read|network|write)");
}

testbed::ScenarioPreset load_scenario(const Args& args) {
  testbed::ScenarioPreset preset = preset_by_name(args.get("preset", "read"));
  if (args.flag("config")) {
    const Config overrides = Config::load(args.get("config", ""));
    preset.config = core::apply_testbed_overrides(preset.config, overrides);
  }
  return preset;
}

core::PipelineConfig pipeline_config(const Args& args) {
  core::PipelineConfig cfg;
  cfg.ppo.hidden_dim = 64;
  cfg.ppo.policy_blocks = 2;
  cfg.ppo.max_episodes = static_cast<int>(args.get_int("episodes", 6000));
  cfg.ppo.stagnation_episodes = 500;
  if (args.flag("paper")) cfg.ppo = rl::PpoConfig::paper_defaults();
  if (args.flag("config")) {
    const Config overrides = Config::load(args.get("config", ""));
    cfg.ppo = core::apply_ppo_overrides(cfg.ppo, overrides);
  }
  cfg.ppo.num_threads =
      static_cast<int>(args.get_int("threads", cfg.ppo.num_threads));
  cfg.ppo.num_envs = static_cast<int>(args.get_int("envs", cfg.ppo.num_envs));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1234));
  return cfg;
}

testbed::Dataset dataset_from(const Args& args) {
  if (args.flag("mixed")) {
    Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1234)));
    const double total = args.get_int("files", 100) *
                         args.get_int("size-mb", 1000) * kMB;
    return testbed::Dataset::mixed(rng, total);
  }
  return testbed::Dataset::uniform(
      static_cast<std::size_t>(args.get_int("files", 100)),
      static_cast<double>(args.get_int("size-mb", 1000)) * kMB);
}

int cmd_list_presets() {
  Table table({"name", "description", "paper-optimal tuple"});
  for (const char* n : {"fabric", "cloudlab", "read", "network", "write"}) {
    const auto p = preset_by_name(n);
    table.add_row({std::string(n), p.name, p.expected_optimal.to_string()});
  }
  table.print(std::cout);
  return 0;
}

int cmd_explore(const Args& args) {
  const auto preset = load_scenario(args);
  testbed::EmulatedEnvironment env(preset.config, testbed::Dataset::infinite());
  probe::ExplorerOptions opt;
  opt.duration_steps = static_cast<int>(args.get_int("steps", 600));
  probe::Explorer explorer(opt);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1234)));
  const probe::ProbeLog log = explorer.run(env, rng);
  const auto estimates = probe::LinkEstimates::from_log(log);
  std::cout << "scenario: " << preset.name << "\n" << estimates << "\n";
  if (args.flag("csv")) {
    std::ofstream f(args.get("csv", ""));
    log.write_csv(f);
    std::cout << "probe log written to " << args.get("csv", "") << "\n";
  }
  return 0;
}

int cmd_train(const Args& args) {
  const auto preset = load_scenario(args);
  core::PipelineConfig cfg = pipeline_config(args);
  cfg.max_threads = preset.config.max_threads;
  cfg.buffers = {preset.config.sender_buffer_bytes,
                 preset.config.receiver_buffer_bytes};

  // --telemetry-csv: per-update PPO diagnostics (reward/KL/clip fraction)
  // through the shared TimeSeriesRecorder exporter.
  telemetry::MetricsRegistry training_registry;
  std::unique_ptr<telemetry::TimeSeriesRecorder> training_recorder;
  if (args.flag("telemetry-csv")) {
    telemetry::RecorderConfig rec;
    rec.capacity = static_cast<std::size_t>(
        std::max<long long>(cfg.ppo.max_episodes, 1));
    training_recorder =
        std::make_unique<telemetry::TimeSeriesRecorder>(training_registry, rec);
    cfg.telemetry_registry = &training_registry;
    cfg.telemetry_recorder = training_recorder.get();
  }

  // --trace-out: rollout / GAE / update phase spans as a Chrome trace.
  std::unique_ptr<telemetry::TraceExporter> trace;
  if (args.flag("trace-out")) {
    trace = std::make_unique<telemetry::TraceExporter>();
    cfg.trace_exporter = trace.get();
  }

  // --metrics-port: scrape the trainer's live registry (ppo.* diagnostics)
  // as OpenMetrics while train_offline runs.
  auto metrics_http = start_metrics_http(args, [&training_registry] {
    return telemetry::render_openmetrics(training_registry);
  });
  if (metrics_http) cfg.telemetry_registry = &training_registry;

  testbed::EmulatedEnvironment env(preset.config, testbed::Dataset::infinite());
  core::OfflineTrainingReport report;
  const core::AutoMdt mdt = core::AutoMdt::train_offline(env, cfg, &report);
  if (metrics_http) metrics_http->stop();

  if (training_recorder) {
    std::ofstream f(args.get("telemetry-csv", ""));
    training_recorder->write_csv(f);
    std::printf("training telemetry written to %s\n",
                args.get("telemetry-csv", "").c_str());
  }
  if (trace) write_trace(*trace, args.get("trace-out", "trace.json"));

  std::printf("estimates: b=%.0f Mbps, ideal %s, R_max=%.0f\n",
              report.estimates.bottleneck_mbps,
              report.estimates.ideal_threads_rounded().to_string().c_str(),
              report.estimates.r_max);
  std::printf("training: %d episodes, best %.3f, %s, %s wall time\n",
              report.training.episodes_run, report.training.best_reward,
              report.training.converged ? "converged" : "episode cap",
              format_duration(report.training.wall_time_s).c_str());

  const std::string out = args.get("out", "automdt.ckpt");
  if (!mdt.save(out)) {
    std::fprintf(stderr, "failed to write checkpoint %s\n", out.c_str());
    return 1;
  }
  std::printf("checkpoint written to %s\n", out.c_str());
  return 0;
}

int cmd_transfer(const Args& args) {
  const auto preset = load_scenario(args);
  const testbed::Dataset dataset = dataset_from(args);
  testbed::EmulatedEnvironment env(preset.config, dataset);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1234)));

  std::unique_ptr<optimizers::ConcurrencyController> ctrl;
  std::optional<core::AutoMdt> mdt;
  const std::string which = args.get("controller", "automdt");
  if (which == "automdt") {
    const std::string ckpt = args.get("ckpt", "");
    if (ckpt.empty())
      throw std::runtime_error("--controller automdt needs --ckpt FILE");
    mdt = core::AutoMdt::load(ckpt, pipeline_config(args));
    mdt->align_environment(env);
    ctrl = mdt->make_controller(args.flag("deterministic"));
  } else if (which == "marlin") {
    ctrl = std::make_unique<optimizers::MarlinController>();
  } else if (which == "globus") {
    ctrl = std::make_unique<optimizers::GlobusStaticController>();
  } else if (which == "jointgd") {
    ctrl = std::make_unique<optimizers::JointGdController>();
  } else if (which == "monolithic") {
    ctrl = std::make_unique<optimizers::MonolithicController>();
  } else if (which == "oracle") {
    ctrl = std::make_unique<optimizers::FixedController>(
        preset.expected_optimal, "Oracle");
  } else {
    throw std::runtime_error("unknown controller: " + which);
  }

  std::printf("transferring %s (%s) over %s with %s ...\n",
              dataset.name().c_str(),
              format_bytes(dataset.total_bytes()).c_str(),
              preset.name.c_str(), ctrl->name().c_str());
  optimizers::RunOptions run_options;
  run_options.max_time_s = 36000.0;
  std::unique_ptr<telemetry::TraceExporter> trace;
  if (args.flag("trace-out")) {
    trace = std::make_unique<telemetry::TraceExporter>();
    run_options.exporter = trace.get();
  }
  // --metrics-port: per-interval transfer.* gauges scrapeable as OpenMetrics
  // while the (emulated) transfer runs.
  telemetry::MetricsRegistry transfer_registry;
  auto metrics_http = start_metrics_http(args, [&transfer_registry] {
    return telemetry::render_openmetrics(transfer_registry);
  });
  if (metrics_http) run_options.metrics = &transfer_registry;
  const auto res = optimizers::run_transfer(env, *ctrl, rng, run_options);
  if (metrics_http) metrics_http->stop();
  std::printf("%s in %s (virtual), average %s\n",
              res.completed ? "completed" : "TIMED OUT",
              format_duration(res.completion_time_s).c_str(),
              format_rate(mbps(res.average_throughput_mbps)).c_str());
  if (args.flag("csv")) {
    std::ofstream f(args.get("csv", ""));
    res.series.write_csv(f);
    std::printf("trace written to %s\n", args.get("csv", "").c_str());
  }
  if (trace) write_trace(*trace, args.get("trace-out", "trace.json"));
  return res.completed ? 0 : 1;
}

// --tenant-quota "name=max_sessions:max_buffer_mb:rate_mbps[,name=...]"
// (0 in any position = unlimited).
std::vector<std::pair<std::string, serve::TenantQuota>> parse_tenant_quotas(
    const std::string& spec) {
  std::vector<std::pair<std::string, serve::TenantQuota>> out;
  std::size_t at = 0;
  while (at < spec.size()) {
    std::size_t comma = spec.find(',', at);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(at, comma - at);
    at = comma + 1;
    const std::size_t eq = entry.find('=');
    const std::size_t c1 = entry.find(':', eq + 1);
    const std::size_t c2 =
        c1 == std::string::npos ? std::string::npos : entry.find(':', c1 + 1);
    if (eq == std::string::npos || c1 == std::string::npos ||
        c2 == std::string::npos) {
      throw std::runtime_error(
          "--tenant-quota entries look like name=max_sessions:max_buffer_mb:"
          "rate_mbps, got: " + entry);
    }
    serve::TenantQuota quota;
    quota.max_sessions = std::stoi(entry.substr(eq + 1, c1 - eq - 1));
    quota.max_buffer_bytes = static_cast<std::uint64_t>(
        std::stod(entry.substr(c1 + 1, c2 - c1 - 1)) * kMB);
    quota.rate_bytes_per_s = std::stod(entry.substr(c2 + 1)) * 1e6 / 8.0;
    out.emplace_back(entry.substr(0, eq), quota);
  }
  return out;
}

// Multi-session serve plane (--max-sessions): one SessionServer, a fixed
// worker pool, and a few in-process loopback driver threads that multiplex
// --sessions concurrent sessions over their connections. Per-session and
// per-tenant state is served over the same kStatsSnapshot telemetry port the
// single-session path uses (`automdt monitor --list-sessions`).
int cmd_serve_sessions(const Args& args) {
  const auto max_sessions =
      static_cast<std::size_t>(args.get_int("max-sessions", 64));
  const int worker_threads =
      std::max(1, static_cast<int>(args.get_int("worker-threads", 4)));
  const int n_sessions =
      std::max(1, static_cast<int>(args.get_int("sessions", 32)));
  const double duration_s = std::stod(args.get("duration", "10"));
  const auto telemetry_port =
      static_cast<std::uint16_t>(args.get_int("telemetry-port", 28765));
  const std::size_t chunk_bytes =
      static_cast<std::size_t>(args.get_int("chunk-kb", 64)) * 1024;

  telemetry::EventJournal journal(4096);
  telemetry::install_log_journal(&journal);

  serve::SessionServerConfig config;
  config.max_sessions = max_sessions;
  config.worker_threads = worker_threads;
  config.event_loops =
      std::max(1, static_cast<int>(args.get_int("event-loops", 1)));
  config.arena_blocks = static_cast<std::size_t>(
      args.get_int("arena-blocks", 64));
  config.arena_block_bytes = std::max<std::size_t>(chunk_bytes, 64 * 1024);
  // --inject-reader-stall: on the serve plane the "reader" is the worker
  // pool, so the injection wedges session 1's chunks for --stall-seconds;
  // the watchdog dump then names that session via stall_report().
  if (args.get_int("inject-reader-stall", 0) > 0) {
    config.inject_worker_stall_s = std::stod(args.get("stall-seconds", "3"));
    config.stall_session_id = 1;
  }
  serve::SessionServer server(config);
  std::vector<std::string> tenant_names;
  if (args.flag("tenant-quota")) {
    for (const auto& [name, quota] :
         parse_tenant_quotas(args.get("tenant-quota", ""))) {
      server.configure_tenant(name, quota);
      tenant_names.push_back(name);
    }
  }
  if (tenant_names.empty()) tenant_names.push_back("default");
  if (!server.start()) {
    std::fprintf(stderr, "serve: cannot bind session server\n");
    telemetry::install_log_journal(nullptr);
    return 1;
  }

  telemetry::FlightRecorderConfig flight_config;
  flight_config.out_dir = args.get("flight-dir", ".");
  telemetry::FlightRecorder flight(flight_config, &server.metrics(), &journal);

  telemetry::WatchdogConfig watchdog_config;
  watchdog_config.poll_interval_s = 0.1;
  watchdog_config.stall_after_s = std::stod(args.get("watchdog-seconds", "1"));
  // The context hook is what makes a many-session stall dump actionable: the
  // aggregate progress counter says "stuck", stall_report() says WHO.
  watchdog_config.context_fn = [&server] { return server.stall_report(); };
  telemetry::PipelineWatchdog watchdog(
      watchdog_config, [&server] { return server.watchdog_progress(); },
      &flight);
  watchdog.start();

  telemetry::StatsServerConfig stats_config;
  stats_config.port = telemetry_port;
  telemetry::StatsServer stats(stats_config,
                               [&server] { return server.metrics().snapshot(); });
  if (!stats.start()) {
    std::fprintf(stderr, "serve: cannot bind telemetry port %u\n",
                 telemetry_port);
    watchdog.stop();
    server.stop();
    telemetry::install_log_journal(nullptr);
    return 1;
  }
  // --metrics-port: the same registry the kStatsSnapshot plane serves, as an
  // OpenMetrics scrape (session./tenant. prefixes become labels).
  auto metrics_http = start_metrics_http(args, [&server] {
    return telemetry::render_openmetrics(server.metrics());
  });

  std::printf(
      "serve plane: %d event loop(s), %d worker thread(s), %zu session "
      "slots, data port %u, telemetry port %u, %.0f s\n",
      config.event_loops, worker_threads, max_sessions, server.port(),
      stats.port(), duration_s);

  // Serve-path clock model (no more hardcoded null clock): driver 0 runs the
  // NTP-style sync against the server's kRpc responder. Loopback makes the
  // offset ~0, but the estimate now flows through the real seam.
  telemetry::ClockModel clock;

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(duration_s);
  const int driver_count = std::min(4, n_sessions);
  std::atomic<std::uint64_t> chunks_sent{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> drivers;
  for (int d = 0; d < driver_count; ++d) {
    drivers.emplace_back([&, d] {
      auto client = serve::SessionClient::connect("127.0.0.1", server.port());
      if (!client) return;
      if (d == 0) client->sync_clock(clock);
      std::vector<std::uint32_t> ids;
      for (int s = d; s < n_sessions; s += driver_count) {
        const auto result = client->open(
            tenant_names[static_cast<std::size_t>(s) % tenant_names.size()]);
        if (result.ok())
          ids.push_back(result.session_id);
        else
          rejected.fetch_add(1, std::memory_order_relaxed);
      }
      std::vector<std::uint64_t> offsets(ids.size(), 0);
      while (std::chrono::steady_clock::now() < deadline && !ids.empty()) {
        for (std::size_t i = 0; i < ids.size(); ++i) {
          if (!client->send_pattern_chunk(ids[i], offsets[i], chunk_bytes))
            return;
          offsets[i] += chunk_bytes;
          chunks_sent.fetch_add(1, std::memory_order_relaxed);
        }
      }
      for (std::uint32_t id : ids) client->close_session(id);
    });
  }
  for (std::thread& t : drivers) t.join();

  if (metrics_http) metrics_http->stop();
  stats.stop();
  watchdog.stop();
  const std::uint64_t bytes_ok = server.total_bytes_ok();
  const std::uint64_t chunks_ok = server.total_chunks_ok();
  const std::size_t live_left = server.registry().live();
  server.stop();
  telemetry::install_log_journal(nullptr);
  std::printf(
      "sessions: %llu admitted, %d rejected, %zu still live; "
      "%llu/%llu chunks verified (%s); clock %s\n",
      static_cast<unsigned long long>(server.registry().admitted_total()),
      rejected.load(), live_left,
      static_cast<unsigned long long>(chunks_ok),
      static_cast<unsigned long long>(chunks_sent.load()),
      format_bytes(static_cast<double>(bytes_ok)).c_str(),
      clock.synced() ? "synced" : "unsynced");
  if (watchdog.stalls_detected() > 0) {
    std::printf("watchdog: %llu stall(s) detected, last dump %s\n",
                static_cast<unsigned long long>(watchdog.stalls_detected()),
                flight.last_path().c_str());
  }
  return 0;
}

// Loop real loopback-TCP transfers and expose the live session's registry
// through a telemetry::StatsServer, so `automdt monitor` (or any
// kStatsSnapshot client) can watch per-stage state change in real time.
int cmd_serve(const Args& args) {
  // --max-sessions selects the many-tenant serve plane; without it the
  // original single-session loop below runs unchanged (CI and test_cli pin
  // its output and ports).
  if (args.flag("max-sessions")) return cmd_serve_sessions(args);
  const auto port =
      static_cast<std::uint16_t>(args.get_int("telemetry-port", 28765));
  const double duration_s =
      std::stod(args.get("duration", "10"));
  const int concurrency =
      std::max(1, static_cast<int>(args.get_int("concurrency", 2)));

  // Structured logging: every LOG_* line also lands in a lock-free bounded
  // journal, so the flight recorder can dump the moments leading up to a
  // failure without any logging-path contention.
  telemetry::EventJournal journal(4096);
  telemetry::install_log_journal(&journal);

  transfer::EngineConfig engine;
  engine.backend = transfer::NetworkBackend::kTcp;
  engine.max_threads = std::max(concurrency, 4);
  engine.chunk_bytes = 128 * 1024;
  engine.telemetry.sample_every =
      static_cast<std::uint32_t>(args.get_int("telemetry-sample", 128));
  // --io-backend: the EngineConfig::io_backend seam. The session resolves a
  // uring request against the kernel at construction; io.backend_uring and
  // io.backend_fallbacks report the outcome over the telemetry port.
  const std::string io_backend = args.get("io-backend", "syscall");
  if (io_backend == "uring") {
    engine.io_backend = transfer::IoBackend::kUring;
  } else if (io_backend != "syscall") {
    throw std::runtime_error("--io-backend must be syscall or uring, got: " +
                             io_backend);
  }
  // --config: engine.* keys override any remaining data-plane knob.
  if (args.flag("config"))
    engine = core::apply_engine_overrides(
        engine, Config::load(args.get("config", "")));

  // --trace-out: collect sampled chunk spans across every transfer of the
  // serve window. Wire stamping rides along so the sampled chunks carry
  // correlated sender/receiver spans (single process: clock offset 0 exact).
  std::unique_ptr<telemetry::TraceExporter> trace;
  if (args.flag("trace-out")) {
    trace = std::make_unique<telemetry::TraceExporter>();
    engine.telemetry.exporter = trace.get();
    engine.telemetry.wire_stamp = true;
  }

  // --inject-reader-stall N: make one reader sleep --stall-seconds after N
  // claimed chunks, so the watchdog's stall->dump path is demonstrable.
  engine.fault.reader_stall_after_chunks = static_cast<std::uint64_t>(
      args.get_int("inject-reader-stall", 0));
  engine.fault.reader_stall_s = std::stod(args.get("stall-seconds", "3"));

  telemetry::FlightRecorderConfig flight_config;
  flight_config.out_dir = args.get("flight-dir", ".");
  telemetry::FlightRecorder flight(flight_config, nullptr, &journal);
  engine.telemetry.flight = &flight;

  // Serve-path clock model: previously hardcoded null, which read as
  // "offset 0" by accident. Publish the loopback truth (both endpoints
  // share one steady clock) through the real ClockModel seam, so
  // wire-stamped trace correlation exercises the same path a two-host
  // deployment would, with a synced model.
  telemetry::ClockModel serve_clock;
  serve_clock.publish(/*offset_ns=*/0, /*rtt_ns=*/0);
  engine.telemetry.clock = &serve_clock;

  const std::vector<double> files(
      static_cast<std::size_t>(args.get_int("files", 4)),
      static_cast<double>(args.get_int("size-mb", 8)) * kMB);

  // The monitor's snapshot source: whichever session is currently live.
  // Sessions are recycled as transfers finish, so the server reads through
  // a mutex-guarded shared_ptr rather than holding engine internals.
  std::mutex session_mutex;
  std::shared_ptr<transfer::TransferSession> session;
  telemetry::StatsServerConfig server_config;
  server_config.port = port;
  telemetry::StatsServer server(server_config, [&] {
    std::shared_ptr<transfer::TransferSession> live;
    {
      std::lock_guard lock(session_mutex);
      live = session;
    }
    return live ? live->telemetry_snapshot() : telemetry::MetricsSnapshot{};
  });
  if (!server.start()) {
    std::fprintf(stderr, "serve: cannot bind telemetry port %u\n", port);
    telemetry::install_log_journal(nullptr);
    return 1;
  }
  std::printf("serving kStatsSnapshot on 127.0.0.1:%u for %.0f s\n",
              server.port(), duration_s);

  // --metrics-port: OpenMetrics scrape of the live session's registry,
  // re-resolved per request because sessions recycle between transfers. An
  // idle gap renders the minimal valid exposition (just "# EOF").
  auto metrics_http = start_metrics_http(args, [&] {
    std::shared_ptr<transfer::TransferSession> live;
    {
      std::lock_guard lock(session_mutex);
      live = session;
    }
    return live ? telemetry::render_openmetrics(live->registry())
                : std::string("# EOF\n");
  });

  // Pipeline watchdog: whichever session is live must advance bytes_written
  // while work remains; --watchdog-seconds of flatline dumps the flight
  // recorder exactly once (it re-arms when progress resumes).
  telemetry::WatchdogConfig watchdog_config;
  watchdog_config.poll_interval_s = 0.1;
  watchdog_config.stall_after_s = std::stod(args.get("watchdog-seconds", "1"));
  // Stage-clock utilization evidence in the stall dump: "which stage was the
  // bottleneck" travels with "which counter flatlined".
  watchdog_config.context_fn = [&]() -> std::string {
    std::shared_ptr<transfer::TransferSession> live;
    {
      std::lock_guard lock(session_mutex);
      live = session;
    }
    return live ? live->bottleneck_report() : std::string();
  };
  telemetry::PipelineWatchdog watchdog(
      watchdog_config,
      [&]() -> std::optional<std::uint64_t> {
        std::shared_ptr<transfer::TransferSession> live;
        {
          std::lock_guard lock(session_mutex);
          live = session;
        }
        if (!live) return std::nullopt;
        const auto stats = live->stats();
        if (stats.finished) return std::nullopt;
        return static_cast<std::uint64_t>(stats.bytes_written);
      },
      &flight);
  watchdog.start();

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(duration_s);
  int transfers = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    auto next = std::make_shared<transfer::TransferSession>(engine, files);
    flight.set_registry(&next->registry());
    {
      std::lock_guard lock(session_mutex);
      session = next;
    }
    next->start({concurrency, concurrency, concurrency});
    while (!next->wait_finished(0.25)) {
      if (std::chrono::steady_clock::now() >= deadline) break;
    }
    {
      std::lock_guard lock(session_mutex);
      session.reset();
    }
    flight.set_registry(nullptr);
    next->stop();
    ++transfers;
  }
  watchdog.stop();
  if (metrics_http) metrics_http->stop();
  server.stop();
  telemetry::install_log_journal(nullptr);
  std::printf("served %llu snapshot(s) over %d transfer(s)\n",
              static_cast<unsigned long long>(server.requests_served()),
              transfers);
  if (watchdog.stalls_detected() > 0) {
    std::printf("watchdog: %llu stall(s) detected, last dump %s\n",
                static_cast<unsigned long long>(watchdog.stalls_detected()),
                flight.last_path().c_str());
  }
  if (trace && !write_trace(*trace, args.get("trace-out", "trace.json")))
    return 1;
  return 0;
}

int cmd_monitor(const Args& args) {
  const std::string host = args.get("host", "127.0.0.1");
  const auto port = static_cast<std::uint16_t>(args.get_int("port", 28765));
  const double interval_s = std::stod(args.get("interval", "1"));
  // --timeout: how long one snapshot may take before the view gives up.
  const double timeout_s = std::stod(args.get("timeout", "5"));

  auto client = telemetry::StatsClient::connect(host, port);
  if (!client) {
    std::fprintf(stderr, "monitor: cannot connect to %s:%u\n", host.c_str(),
                 port);
    return 1;
  }

  // The poll-and-complain dance every one-shot view shares (it used to be
  // copy-pasted per view, each with its own hardcoded 5 s budget).
  const auto poll_snapshot =
      [&client,
       timeout_s]() -> std::optional<telemetry::MetricsSnapshot> {
    const auto resp = client->poll(timeout_s);
    if (!resp) {
      std::fprintf(stderr, "monitor: no snapshot within %g s\n", timeout_s);
      return std::nullopt;
    }
    return telemetry::message_to_snapshot(*resp);
  };

  // --bottleneck: the serve side's online attribution — the verdict gauge
  // plus per-stage busy/blocked fractions and effective bandwidth that the
  // stage clocks feed over kStatsSnapshot. One line with --once, a ticker at
  // --interval otherwise.
  if (args.flag("bottleneck")) {
    const auto render = [](const telemetry::MetricsSnapshot& snap) {
      const double verdict = snap.value_or("pipeline.bottleneck", -1.0);
      std::printf("[gen %llu t=%7.1fs] bottleneck: %s",
                  static_cast<unsigned long long>(snap.generation),
                  snap.uptime_s,
                  verdict < 0.0 || verdict > 2.0
                      ? "n/a"
                      : stage_name(static_cast<Stage>(
                            static_cast<int>(verdict))));
      for (Stage s : kAllStages) {
        const std::string prefix = std::string("stage.") + stage_name(s);
        std::printf(" | %s busy %.2f blocked %.2f eff %.0f Mbps",
                    stage_name(s), snap.value_or(prefix + ".busy_frac"),
                    snap.value_or(prefix + ".blocked_frac"),
                    snap.value_or(prefix + ".eff_mbps"));
      }
      std::printf("\n");
      std::fflush(stdout);
    };
    int misses = 0;
    for (;;) {
      const auto snap = poll_snapshot();
      if (!snap) {
        if (args.flag("once")) return 1;
        if (++misses >= 3 || !client->connected()) {
          std::fprintf(stderr, "monitor: endpoint gone\n");
          return 0;
        }
        continue;
      }
      misses = 0;
      render(*snap);
      if (args.flag("once")) return 0;
      std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
    }
  }

  // --list-sessions: one snapshot, rendered as a per-session table (serve
  // --max-sessions exports session.<id>.* through the same kStatsSnapshot).
  if (args.flag("list-sessions")) {
    const auto snap_opt = poll_snapshot();
    if (!snap_opt) return 1;
    const telemetry::MetricsSnapshot& snap = *snap_opt;
    struct SessionRow {
      double state = -1.0;
      double inflight = 0.0;
      double chunks = 0.0;
      double bytes = 0.0;
      double fails = 0.0;
      double busy_ns = 0.0;
    };
    std::map<long long, SessionRow> rows;
    for (const auto& sample : snap.samples) {
      if (sample.name.rfind("session.", 0) != 0) continue;
      const std::size_t dot = sample.name.find('.', 8);
      if (dot == std::string::npos) continue;
      long long id = 0;
      try {
        id = std::stoll(sample.name.substr(8, dot - 8));
      } catch (const std::exception&) {
        continue;
      }
      const std::string leaf = sample.name.substr(dot + 1);
      SessionRow& row = rows[id];
      if (leaf == "state") row.state = sample.value;
      else if (leaf == "inflight_chunks") row.inflight = sample.value;
      else if (leaf == "chunks_ok") row.chunks = sample.value;
      else if (leaf == "bytes_ok") row.bytes = sample.value;
      else if (leaf == "verify_failures") row.fails = sample.value;
      else if (leaf == "busy_ns") row.busy_ns = sample.value;
    }
    if (rows.empty()) {
      std::printf("no sessions in snapshot (generation %llu)\n",
                  static_cast<unsigned long long>(snap.generation));
      return 0;
    }
    Table table({"session", "state", "inflight", "chunks_ok", "bytes_ok",
                 "verify_failures", "busy_s"});
    for (const auto& [id, row] : rows) {
      const char* state =
          row.state < 0
              ? "?"
              : serve::to_string(static_cast<serve::SessionLifecycle>(
                    static_cast<std::uint32_t>(row.state)));
      char busy_s[32];
      std::snprintf(busy_s, sizeof(busy_s), "%.3f", row.busy_ns / 1e9);
      table.add_row({std::to_string(id), std::string(state),
                     std::to_string(static_cast<long long>(row.inflight)),
                     std::to_string(static_cast<long long>(row.chunks)),
                     format_bytes(row.bytes),
                     std::to_string(static_cast<long long>(row.fails)),
                     std::string(busy_s)});
    }
    table.print(std::cout);
    return 0;
  }

  if (args.flag("once")) {
    const auto snap = poll_snapshot();
    if (!snap) return 1;
    telemetry::write_snapshot_json(std::cout, *snap);
    std::cout << "\n";
    return 0;
  }

  // Live mode: per-stage throughput from byte-counter deltas over the
  // responder's own uptime clock, queue occupancy, and sampled chunk-latency
  // percentiles. Runs until the server goes away.
  double prev_uptime = 0.0;
  double prev_read = 0.0, prev_net = 0.0, prev_write = 0.0;
  bool have_prev = false;
  int misses = 0;
  for (;;) {
    const auto resp = client->poll(/*timeout_s=*/interval_s + 2.0);
    if (!resp) {
      if (++misses >= 3 || !client->connected()) {
        std::fprintf(stderr, "monitor: endpoint gone\n");
        return 0;
      }
      continue;
    }
    misses = 0;
    const telemetry::MetricsSnapshot snap =
        telemetry::message_to_snapshot(*resp);
    const double read = snap.value_or("read.bytes");
    const double net = snap.value_or("network.bytes");
    const double written = snap.value_or("write.bytes");
    const double dt = snap.uptime_s - prev_uptime;
    if (have_prev && dt > 0.0) {
      // Counters reset when serve recycles sessions; clamp negatives to 0.
      const auto rate = [dt](double now, double before) {
        return std::max(0.0, to_mbps((now - before) / dt));
      };
      std::printf(
          "[gen %llu t=%7.1fs] read %8.1f | net %8.1f | write %8.1f Mbps"
          " | sq %3.0f/%3.0f rq %3.0f/%3.0f"
          " | write p50/p99 %.0f/%.0f us\n",
          static_cast<unsigned long long>(snap.generation), snap.uptime_s,
          rate(read, prev_read), rate(net, prev_net),
          rate(written, prev_write), snap.value_or("sender_queue.chunks"),
          snap.value_or("sender_queue.capacity"),
          snap.value_or("receiver_queue.chunks"),
          snap.value_or("receiver_queue.capacity"),
          snap.value_or("write.service_ns.p50") / 1000.0,
          snap.value_or("write.service_ns.p99") / 1000.0);
      std::fflush(stdout);
    }
    prev_uptime = snap.uptime_s;
    prev_read = read;
    prev_net = net;
    prev_write = written;
    have_prev = true;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
  }
}

int cmd_info(const Args& args) {
  const std::string ckpt = args.get("ckpt", "");
  if (ckpt.empty()) throw std::runtime_error("info needs --ckpt FILE");
  const auto state = nn::load_state_dict_file(ckpt);
  std::size_t total = 0;
  Table table({"parameter", "shape", "elements"});
  for (const auto& [name, m] : state) {
    table.add_row({name,
                   std::to_string(m.rows()) + "x" + std::to_string(m.cols()),
                   static_cast<long long>(m.size())});
    total += m.size();
  }
  table.print(std::cout);
  std::printf("total parameters: %zu\n", total);
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: automdt "
               "<list-presets|explore|train|transfer|serve|monitor|info> "
               "[options]\n  see the header of tools/automdt_cli.cpp for "
               "options\n");
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kWarn);
  try {
    const Args args = parse_args(argc, argv);
    if (args.command == "list-presets") return cmd_list_presets();
    if (args.command == "explore") return cmd_explore(args);
    if (args.command == "train") return cmd_train(args);
    if (args.command == "transfer") return cmd_transfer(args);
    if (args.command == "serve") return cmd_serve(args);
    if (args.command == "monitor") return cmd_monitor(args);
    if (args.command == "info") return cmd_info(args);
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
