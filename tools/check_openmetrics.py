#!/usr/bin/env python3
"""Validate an OpenMetrics text exposition read from stdin (or a file arg).

CI pipes `curl -s http://host:port/metrics` through this after starting a
live serve/transfer process, so the check covers what a Prometheus scraper
actually depends on rather than what the unit tests pinned:

  * metric names match [a-zA-Z_:][a-zA-Z0-9_:]* and carry no stray bytes
  * `# TYPE` lines use a known kind and appear once per family, before any
    of that family's samples
  * label sets are well-formed ({key="value"} with escaped quotes) and
    every sample's family was declared
  * counter samples use the `_total` suffix
  * histogram `le` buckets are numerically ascending with non-decreasing
    cumulative counts, closed by `le="+Inf"` whose count equals `_count`
  * sample values parse as floats (NaN / +Inf / -Inf allowed)
  * the exposition ends with `# EOF`

Exit status 0 on success; 1 with one line per violation otherwise.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
KINDS = {"counter", "gauge", "histogram", "summary", "untyped", "info"}
# name, optional {labels}, space, value (exemplars/timestamps unused here).
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_value(text):
    if text in ("NaN", "+Inf", "-Inf"):
        return float(text.replace("Inf", "inf"))
    return float(text)  # raises ValueError on garbage


def parse_labels(raw):
    """Return a dict of labels, or None when the set is malformed."""
    if raw is None or raw == "":
        return {}
    out = {}
    rest = raw
    while rest:
        match = LABEL_RE.match(rest)
        if match is None:
            return None
        out[match.group(1)] = match.group(2)
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            return None
    return out


def base_family(name):
    """Strip the sample-name suffix back to its family."""
    for suffix in ("_total", "_bucket", "_sum", "_count", "_created"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def main():
    if len(sys.argv) > 1:
        with open(sys.argv[1], "r", encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = sys.stdin.read()

    errors = []
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        errors.append("exposition does not end with '# EOF'")

    types = {}  # family -> kind
    samples = 0
    # (family, frozenset(labels minus le)) -> list of (le, cumulative)
    buckets = {}
    counts = {}  # same key -> _count value

    for lineno, line in enumerate(lines, 1):
        if line == "# EOF":
            if lineno != len(lines):
                errors.append(f"line {lineno}: '# EOF' before end of input")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                errors.append(f"line {lineno}: malformed TYPE line: {line!r}")
                continue
            _, _, family, kind = parts
            if not NAME_RE.match(family):
                errors.append(f"line {lineno}: invalid family name {family!r}")
            if kind not in KINDS:
                errors.append(f"line {lineno}: unknown metric kind {kind!r}")
            if family in types:
                errors.append(f"line {lineno}: duplicate TYPE for {family!r}")
            types[family] = kind
            continue
        if line.startswith("#"):
            continue  # HELP / UNIT lines are legal, we emit none

        match = SAMPLE_RE.match(line)
        if match is None:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        samples += 1
        name = match.group("name")
        labels = parse_labels(match.group("labels"))
        if labels is None:
            errors.append(f"line {lineno}: malformed label set: {line!r}")
            continue
        try:
            value = parse_value(match.group("value"))
        except ValueError:
            errors.append(
                f"line {lineno}: bad sample value {match.group('value')!r}")
            continue

        family = base_family(name)
        kind = types.get(family) or types.get(name)
        if kind is None:
            errors.append(f"line {lineno}: sample {name!r} has no TYPE line")
            continue
        if kind == "counter" and not name.endswith(
                ("_total", "_created")):
            errors.append(
                f"line {lineno}: counter sample {name!r} lacks _total")
        if kind == "histogram":
            key = (family,
                   frozenset((k, v) for k, v in labels.items() if k != "le"))
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(
                        f"line {lineno}: histogram bucket without le label")
                    continue
                le = (float("inf") if labels["le"] == "+Inf"
                      else float(labels["le"]))
                series = buckets.setdefault(key, [])
                if series:
                    last_le, last_cum = series[-1]
                    if le <= last_le:
                        errors.append(
                            f"line {lineno}: bucket le={labels['le']} not "
                            f"ascending for {family!r}")
                    if value < last_cum:
                        errors.append(
                            f"line {lineno}: bucket counts not cumulative "
                            f"for {family!r}")
                series.append((le, value))
            elif name.endswith("_count"):
                counts[key] = value

    for key, series in buckets.items():
        family = key[0]
        if not series or series[-1][0] != float("inf"):
            errors.append(f"histogram {family!r} not closed by le=\"+Inf\"")
            continue
        if key in counts and series[-1][1] != counts[key]:
            errors.append(
                f"histogram {family!r}: +Inf bucket {series[-1][1]} != "
                f"_count {counts[key]}")

    if samples == 0:
        errors.append("no samples found")

    if errors:
        for error in errors:
            print(f"check_openmetrics: {error}", file=sys.stderr)
        return 1
    print(f"check_openmetrics: ok "
          f"({len(types)} families, {samples} samples)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
