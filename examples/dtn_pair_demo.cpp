// Two-agent DTN deployment demo: the optimizer runs on the "sender" side and
// learns the receiver's buffer state only through the RPC control channel
// (paper §IV-D.1), here with 20 ms of simulated one-way control latency.
//
// The write stage is throttled hard, so the receiver staging buffer fills up
// — watch the receiver-free column (reported over RPC) collapse while the
// sender-side buffer stays healthy, and the controller react by backing off.
//
// Build & run:  ./build/examples/dtn_pair_demo
#include <cstdio>

#include "common/logging.hpp"
#include "optimizers/marlin_controller.hpp"
#include "transfer/dtn_pair.hpp"

using namespace automdt;

int main() {
  set_log_level(LogLevel::kInfo);

  transfer::DtnPairConfig cfg;
  cfg.engine.max_threads = 6;
  cfg.engine.chunk_bytes = 128 * 1024;
  cfg.engine.sender_buffer_bytes = 4.0 * kMiB;
  cfg.engine.receiver_buffer_bytes = 4.0 * kMiB;
  cfg.engine.read.per_thread_bytes_per_s = 24.0 * 1024 * 1024;
  cfg.engine.network.per_thread_bytes_per_s = 12.0 * 1024 * 1024;
  cfg.engine.write.per_thread_bytes_per_s = 3.0 * 1024 * 1024;  // bottleneck
  cfg.file_sizes_bytes.assign(32, 2.0 * kMiB);  // 64 MiB total
  cfg.probe_interval_s = 0.25;
  cfg.rpc_latency_s = 0.02;

  transfer::DtnPairEnv env(cfg);
  optimizers::MarlinConfig mcfg;
  mcfg.max_threads = cfg.engine.max_threads;
  optimizers::MarlinController controller(mcfg);

  Rng rng(3);
  EnvStep last;
  last.observation = env.reset(rng);
  controller.reset(rng);
  ConcurrencyTuple tuple = controller.initial_action();

  std::printf("%4s  %-9s %10s %10s %10s | %11s %13s\n", "step", "threads",
              "read", "network", "write", "sender free", "receiver free");
  for (int i = 0; i < 300; ++i) {
    last = env.step(tuple);
    std::printf("%4d  %-9s %10s %10s %10s | %10.0f%% %12.0f%%\n", i,
                tuple.to_string().c_str(),
                format_rate(mbps(last.throughputs_mbps.read)).c_str(),
                format_rate(mbps(last.throughputs_mbps.network)).c_str(),
                format_rate(mbps(last.throughputs_mbps.write)).c_str(),
                last.observation[6] * 100.0, last.observation[7] * 100.0);
    if (last.done) {
      std::printf("\ntransfer complete; %llu buffer reports travelled the "
                  "RPC control channel\n",
                  static_cast<unsigned long long>(env.rpc_responses()));
      break;
    }
    tuple = controller.decide(last, tuple);
  }
  return 0;
}
