// Science workload sensitivity: the paper's intro motivates AutoMDT with
// genomics, sky surveys, detector data and simulation output — four very
// different file-size signatures. This example transfers each over the
// FABRIC-class link with a trained AutoMDT controller and a static Globus
// configuration, showing how per-file costs interact with the optimizer.
//
// Build & run:  ./build/examples/science_workloads
#include <cstdio>
#include <iostream>

#include "common/csv.hpp"
#include "common/logging.hpp"
#include "core/automdt.hpp"
#include "optimizers/runner.hpp"
#include "optimizers/static_controller.hpp"
#include "testbed/presets.hpp"
#include "testbed/workloads.hpp"

using namespace automdt;

int main() {
  set_log_level(LogLevel::kWarn);
  const testbed::ScenarioPreset preset = testbed::fabric_ncsa_tacc();

  sim::SimScenario s;
  s.sender_capacity = preset.config.sender_buffer_bytes;
  s.receiver_capacity = preset.config.receiver_buffer_bytes;
  s.tpt_mbps = {2500.0, 1200.0, 2000.0};
  s.bandwidth_mbps = {30000.0, 25000.0, 26000.0};
  s.max_threads = preset.config.max_threads;

  core::PipelineConfig cfg;
  cfg.ppo.hidden_dim = 64;
  cfg.ppo.policy_blocks = 2;
  cfg.ppo.max_episodes = 4000;
  cfg.ppo.stagnation_episodes = 400;
  std::printf("training agent on FABRIC-like scenario ...\n\n");
  const core::AutoMdt mdt = core::AutoMdt::train_on_scenario(s, cfg);

  Rng wrng(31415);
  struct Entry {
    testbed::Dataset data;
  } workloads[] = {
      {testbed::genomics_run(wrng)},
      {testbed::sky_survey_night(wrng, 1000)},
      {testbed::detector_snapshots(wrng, 200.0 * kGB)},
      {testbed::climate_model(wrng, 6)},
  };

  Table table({"workload", "files", "total", "mean file", "AutoMDT (Gbps)",
               "Globus (Gbps)"},
              2);
  for (const auto& w : workloads) {
    testbed::EmulatedEnvironment env_a(preset.config, w.data);
    mdt.align_environment(env_a);
    auto actrl = mdt.make_controller(/*deterministic=*/true);
    Rng ra(1);
    const auto res_a = optimizers::run_transfer(env_a, *actrl, ra, {36000.0});

    testbed::EmulatedEnvironment env_g(preset.config, w.data);
    optimizers::GlobusStaticController globus;
    Rng rg(1);
    const auto res_g = optimizers::run_transfer(env_g, globus, rg, {36000.0});

    table.add_row({w.data.name(),
                   static_cast<long long>(w.data.file_count()),
                   format_bytes(w.data.total_bytes()),
                   format_bytes(w.data.mean_file_bytes()),
                   res_a.average_throughput_mbps / 1000.0,
                   res_g.average_throughput_mbps / 1000.0});
  }

  table.print(std::cout);
  std::printf("\nsmall-file-heavy workloads (climate diagnostics) pay the "
              "per-file turnaround at every stage;\nlarge sequential runs "
              "(genomics) ride the link at full rate.\n");
  return 0;
}
