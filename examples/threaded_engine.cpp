// Real threads, real time: drives the threaded transfer engine (reader /
// network / writer worker pools, bounded staging queues, token-bucket
// throttles) with a live controller at laptop scale.
//
// The engine moves ~48 MiB of synthetic chunks through memory with the
// network stage throttled per-thread, so raising the network concurrency
// visibly raises throughput — watch the per-probe lines.
//
// Build & run:  ./build/examples/threaded_engine
#include <cstdio>

#include "common/logging.hpp"
#include "common/units.hpp"
#include "optimizers/marlin_controller.hpp"
#include "transfer/real_env.hpp"

using namespace automdt;

int main() {
  set_log_level(LogLevel::kInfo);

  transfer::RealEnvConfig cfg;
  cfg.engine.max_threads = 6;
  cfg.engine.chunk_bytes = 128 * 1024;
  cfg.engine.sender_buffer_bytes = 4.0 * kMiB;
  cfg.engine.receiver_buffer_bytes = 4.0 * kMiB;
  // Per-thread throttles (bytes/s): network is the bottleneck stage.
  cfg.engine.read.per_thread_bytes_per_s = 24.0 * 1024 * 1024;
  cfg.engine.network.per_thread_bytes_per_s = 6.0 * 1024 * 1024;
  cfg.engine.network.aggregate_bytes_per_s = 30.0 * 1024 * 1024;
  cfg.engine.write.per_thread_bytes_per_s = 16.0 * 1024 * 1024;
  cfg.file_sizes_bytes.assign(24, 2.0 * kMiB);  // 48 MiB total
  cfg.probe_interval_s = 0.25;

  transfer::RealTransferEnv env(cfg);

  // Marlin's per-stage hill climbing works against real threads unchanged —
  // the Env interface is the same one the emulator exposes.
  optimizers::MarlinConfig mcfg;
  mcfg.max_threads = cfg.engine.max_threads;
  optimizers::MarlinController controller(mcfg);

  Rng rng(5);
  EnvStep last;
  last.observation = env.reset(rng);
  controller.reset(rng);
  ConcurrencyTuple tuple = controller.initial_action();

  std::printf("%6s  %-10s %12s %12s %12s\n", "t(s)", "threads", "read",
              "network", "write");
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 400; ++i) {
    last = env.step(tuple);
    const double t =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("%6.2f  %-10s %12s %12s %12s\n", t,
                tuple.to_string().c_str(),
                format_rate(mbps(last.throughputs_mbps.read)).c_str(),
                format_rate(mbps(last.throughputs_mbps.network)).c_str(),
                format_rate(mbps(last.throughputs_mbps.write)).c_str());
    if (last.done) {
      std::printf("\ntransfer complete in %.2f s (wall time), "
                  "checksum verification passed for every chunk\n", t);
      break;
    }
    tuple = controller.decide(last, tuple);
  }
  return 0;
}
