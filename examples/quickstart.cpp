// Quickstart: the full AutoMDT pipeline end to end.
//
//   1. Point at a transfer environment (here the read-bottleneck emulated
//      testbed — swap in your own Env implementation for a real deployment).
//   2. Run the offline pipeline: 10-minute random-threads exploration, link
//      estimation, simulator construction, PPO training (paper §IV).
//   3. Save / reload the trained agent checkpoint.
//   4. Run a production transfer (100 x 100 MB) under the trained controller
//      and print the per-phase summary.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "common/logging.hpp"
#include "core/automdt.hpp"
#include "optimizers/runner.hpp"
#include "testbed/presets.hpp"

using namespace automdt;

int main() {
  set_log_level(LogLevel::kInfo);

  // ---- 1. The "real" environment -----------------------------------------
  const testbed::ScenarioPreset preset = testbed::bottleneck_read();
  std::printf("Scenario: %s (paper-optimal tuple %s)\n", preset.name.c_str(),
              preset.expected_optimal.to_string().c_str());
  testbed::EmulatedEnvironment explore_env(preset.config,
                                           testbed::Dataset::infinite());

  // ---- 2. Offline pipeline ------------------------------------------------
  core::PipelineConfig cfg;
  cfg.buffers = {preset.config.sender_buffer_bytes,
                 preset.config.receiver_buffer_bytes};
  cfg.max_threads = preset.config.max_threads;
  // Reduced budget so the example finishes in ~30 s; see
  // rl::PpoConfig::paper_defaults() for the published configuration.
  cfg.ppo.hidden_dim = 64;
  cfg.ppo.policy_blocks = 2;
  cfg.ppo.max_episodes = 4000;
  cfg.ppo.stagnation_episodes = 400;

  core::OfflineTrainingReport report;
  const core::AutoMdt mdt = core::AutoMdt::train_offline(explore_env, cfg,
                                                         &report);

  std::printf("\n-- Exploration (10 virtual minutes of random threads) --\n");
  std::printf("  estimated bandwidths  B = (%.0f, %.0f, %.0f) Mbps\n",
              report.estimates.bandwidth_mbps.read,
              report.estimates.bandwidth_mbps.network,
              report.estimates.bandwidth_mbps.write);
  std::printf("  per-thread rates    TPT = (%.0f, %.0f, %.0f) Mbps\n",
              report.estimates.tpt_mbps.read, report.estimates.tpt_mbps.network,
              report.estimates.tpt_mbps.write);
  std::printf("  bottleneck b = %.0f Mbps, ideal threads %s, R_max = %.0f\n",
              report.estimates.bottleneck_mbps,
              report.estimates.ideal_threads_rounded().to_string().c_str(),
              report.estimates.r_max);

  std::printf("\n-- Offline PPO training in the dynamics simulator --\n");
  std::printf("  episodes: %d, best normalized reward: %.3f, %s\n",
              report.training.episodes_run, report.training.best_reward,
              report.training.converged ? "converged" : "hit episode cap");
  std::printf("  wall time: %s\n",
              format_duration(report.training.wall_time_s).c_str());

  // ---- 3. Checkpoint round trip -------------------------------------------
  const std::string ckpt = "/tmp/automdt_quickstart.ckpt";
  if (mdt.save(ckpt)) std::printf("\nCheckpoint saved to %s\n", ckpt.c_str());
  const core::AutoMdt loaded = core::AutoMdt::load(ckpt, cfg);

  // ---- 4. Production transfer ----------------------------------------------
  testbed::EmulatedEnvironment transfer_env(
      preset.config, testbed::Dataset::uniform(100, 100.0 * kMB));
  loaded.align_environment(transfer_env);
  auto controller = loaded.make_controller();
  Rng rng(7);
  const optimizers::RunResult result =
      optimizers::run_transfer(transfer_env, *controller, rng, {3600.0});

  std::printf("\n-- Production transfer: 100 x 100 MB --\n");
  std::printf("  completed: %s in %s (virtual time)\n",
              result.completed ? "yes" : "no",
              format_duration(result.completion_time_s).c_str());
  std::printf("  average throughput: %s\n",
              format_rate(mbps(result.average_throughput_mbps)).c_str());
  const auto& last = result.series.points().back();
  std::printf("  final concurrency: %s (paper optimum %s)\n",
              last.threads.to_string().c_str(),
              preset.expected_optimal.to_string().c_str());
  return 0;
}
