// Real-socket DTN pair demo: the same two-agent deployment as
// dtn_pair_demo, but with EngineConfig::backend = NetworkBackend::kTcp the
// data plane moves every chunk through per-worker TCP streams on loopback
// (length-prefixed frames, FNV-1a checksums verified on the far side) and
// the RPC control channel rides its own TCP connection.
//
// The driver lowers and raises the network-thread count mid-transfer so you
// can watch the receiver observe the change as parked/resumed streams —
// connections stay open across the retune, so no reconnect storm.
//
// Build & run:  ./build/examples/tcp_transfer_demo
#include <cstdio>

#include "common/logging.hpp"
#include "transfer/dtn_pair.hpp"

using namespace automdt;

int main() {
  set_log_level(LogLevel::kInfo);

  transfer::DtnPairConfig cfg;
  cfg.backend = transfer::NetworkBackend::kTcp;  // real loopback sockets
  cfg.engine.max_threads = 4;
  cfg.engine.chunk_bytes = 128 * 1024;
  cfg.engine.sender_buffer_bytes = 4.0 * kMiB;
  cfg.engine.receiver_buffer_bytes = 4.0 * kMiB;
  cfg.engine.network.aggregate_bytes_per_s = 24.0 * 1024 * 1024;
  cfg.file_sizes_bytes.assign(48, 2.0 * kMiB);  // 96 MiB total
  cfg.probe_interval_s = 0.25;
  cfg.rpc_latency_s = 0.02;

  transfer::DtnPairEnv env(cfg);
  Rng rng(3);
  env.reset(rng);

  // Scripted retune: full fan-out, then throttle the network stage to one
  // stream, then bring three back. Streams park instead of disconnecting.
  auto tuple_for_step = [](int step) -> ConcurrencyTuple {
    if (step < 8) return {4, 4, 4};
    if (step < 16) return {4, 1, 4};
    return {4, 3, 4};
  };

  std::printf("%4s  %-9s %10s | %6s %6s %6s\n", "step", "threads", "network",
              "open", "active", "parked");
  for (int i = 0; i < 300; ++i) {
    const ConcurrencyTuple tuple = tuple_for_step(i);
    const EnvStep last = env.step(tuple);
    const transfer::TransferStats stats = env.session()->stats();
    std::printf("%4d  %-9s %10s | %6d %6d %6d\n", i,
                tuple.to_string().c_str(),
                format_rate(mbps(last.throughputs_mbps.network)).c_str(),
                stats.net_streams_open, stats.net_streams_active,
                stats.net_streams_parked);
    if (last.done) {
      std::printf(
          "\ntransfer complete over TCP: %llu chunks framed and verified "
          "(%llu frame errors, %llu checksum failures), %llu RPC responses, "
          "%llu concurrency updates pushed to the receiver\n",
          static_cast<unsigned long long>(stats.chunks_written),
          static_cast<unsigned long long>(stats.net_frame_errors),
          static_cast<unsigned long long>(stats.verify_failures),
          static_cast<unsigned long long>(env.rpc_responses()),
          static_cast<unsigned long long>(env.concurrency_updates()));
      break;
    }
  }
  return 0;
}
