// Mixed-workload transfer on the FABRIC-like high-bandwidth preset —
// the paper's Dataset B scenario (§V: "a total of 1 TB data consisting of
// file sizes from 100 KB to 2 GB"), scaled to 50 GB so the example runs in
// seconds of wall time. Small files pay per-file overhead, so the mixed set
// moves slower than an equal volume of large files; AutoMDT adapts either
// way while the static Globus configuration cannot.
//
// Build & run:  ./build/examples/mixed_workload
#include <cstdio>
#include <iostream>

#include "common/csv.hpp"
#include "common/logging.hpp"
#include "core/automdt.hpp"
#include "optimizers/runner.hpp"
#include "optimizers/static_controller.hpp"
#include "testbed/presets.hpp"

using namespace automdt;

int main() {
  set_log_level(LogLevel::kWarn);
  const testbed::ScenarioPreset preset = testbed::fabric_ncsa_tacc();

  // Offline-train on the scenario the exploration phase would measure.
  sim::SimScenario s;
  s.sender_capacity = preset.config.sender_buffer_bytes;
  s.receiver_capacity = preset.config.receiver_buffer_bytes;
  s.tpt_mbps = {2500.0, 1200.0, 2000.0};
  s.bandwidth_mbps = {30000.0, 25000.0, 26000.0};
  s.max_threads = preset.config.max_threads;

  core::PipelineConfig cfg;
  cfg.ppo.hidden_dim = 64;
  cfg.ppo.policy_blocks = 2;
  cfg.ppo.max_episodes = 4000;
  cfg.ppo.stagnation_episodes = 400;
  std::printf("training agent on FABRIC-like scenario ...\n");
  const core::AutoMdt mdt = core::AutoMdt::train_on_scenario(s, cfg);

  Rng dataset_rng(99);
  struct Workload {
    const char* label;
    testbed::Dataset data;
  } workloads[] = {
      {"Large (50 x 1GB)", testbed::Dataset::uniform(50, 1.0 * kGB)},
      {"Mixed (100KB-2GB, 50GB)",
       testbed::Dataset::mixed(dataset_rng, 50.0 * kGB)},
  };

  Table table({"workload", "controller", "completion (s)", "avg rate (Gbps)"},
              2);
  for (auto& w : workloads) {
    std::printf("  %s: %zu files, %s total\n", w.label, w.data.file_count(),
                format_bytes(w.data.total_bytes()).c_str());

    testbed::EmulatedEnvironment env_a(preset.config, w.data);
    mdt.align_environment(env_a);
    auto automdt_ctrl = mdt.make_controller();
    Rng ra(1);
    const auto res_a = optimizers::run_transfer(env_a, *automdt_ctrl, ra,
                                                {3600.0});
    table.add_row({std::string(w.label), std::string("AutoMDT"),
                   res_a.completion_time_s,
                   res_a.average_throughput_mbps / 1000.0});

    testbed::EmulatedEnvironment env_g(preset.config, w.data);
    optimizers::GlobusStaticController globus;
    Rng rg(1);
    const auto res_g = optimizers::run_transfer(env_g, globus, rg, {3600.0});
    table.add_row({std::string(w.label), std::string("Globus (static 4x8)"),
                   res_g.completion_time_s,
                   res_g.average_throughput_mbps / 1000.0});
  }

  std::printf("\n");
  table.print(std::cout);
  std::printf("\nNote: mixed files pay per-file overhead, lowering both "
              "tools' rates\n(the paper's Table I shows the same Dataset-A "
              "vs Dataset-B gap).\n");
  return 0;
}
