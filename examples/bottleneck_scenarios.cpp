// Bottleneck scenarios (paper Fig. 5): train one agent per throttled
// scenario, then race AutoMDT against Marlin, joint gradient descent, and the
// monolithic single-knob controller on the same transfer, printing when each
// identifies the bottleneck stage and how long the transfer takes.
//
// Build & run:  ./build/examples/bottleneck_scenarios
#include <cstdio>
#include <iostream>

#include "common/csv.hpp"
#include "common/logging.hpp"
#include "core/automdt.hpp"
#include "optimizers/joint_gd_controller.hpp"
#include "optimizers/marlin_controller.hpp"
#include "optimizers/monolithic_controller.hpp"
#include "optimizers/runner.hpp"
#include "testbed/presets.hpp"

using namespace automdt;

namespace {

Stage bottleneck_stage(const ConcurrencyTuple& optimal) {
  Stage best = Stage::kRead;
  for (Stage s : kAllStages)
    if (optimal[s] > optimal[best]) best = s;
  return best;
}

core::AutoMdt train_for(const testbed::ScenarioPreset& preset,
                        const StageTriple& tpt) {
  sim::SimScenario s;
  s.sender_capacity = preset.config.sender_buffer_bytes;
  s.receiver_capacity = preset.config.receiver_buffer_bytes;
  s.tpt_mbps = tpt;
  s.bandwidth_mbps = {1000.0, 1000.0, 1000.0};
  s.max_threads = preset.config.max_threads;

  core::PipelineConfig cfg;
  cfg.ppo.hidden_dim = 64;
  cfg.ppo.policy_blocks = 2;
  cfg.ppo.max_episodes = 4000;
  cfg.ppo.stagnation_episodes = 400;
  return core::AutoMdt::train_on_scenario(s, cfg);
}

}  // namespace

int main() {
  set_log_level(LogLevel::kWarn);
  const StageTriple throttles[3] = {
      {80.0, 160.0, 200.0}, {205.0, 75.0, 195.0}, {200.0, 150.0, 70.0}};

  Table table({"scenario", "controller", "t_bottleneck_found (s)",
               "completion (s)", "avg rate (Mbps)"},
              1);

  const auto presets = testbed::fig5_presets();
  for (std::size_t i = 0; i < presets.size(); ++i) {
    const auto& preset = presets[i];
    std::printf("training agent for: %s ...\n", preset.name.c_str());
    const core::AutoMdt mdt = train_for(preset, throttles[i]);
    const Stage key_stage = bottleneck_stage(preset.expected_optimal);
    const int key_level = preset.expected_optimal[key_stage] - 1;  // slack 1

    auto race = [&](optimizers::ConcurrencyController& ctrl) {
      testbed::EmulatedEnvironment env(preset.config,
                                       testbed::Dataset::uniform(20, 1.0 * kGB));
      if (ctrl.name() == "AutoMDT") mdt.align_environment(env);
      Rng rng(11);
      const auto res = optimizers::run_transfer(env, ctrl, rng, {3600.0});
      const auto found = res.series.time_to_reach(key_stage, key_level, 1);
      table.add_row({preset.name + "", ctrl.name(),
                     found ? Cell{*found} : Cell{std::string("never")},
                     res.completed ? Cell{res.completion_time_s}
                                   : Cell{std::string(">cap")},
                     res.average_throughput_mbps});
    };

    auto automdt_ctrl = mdt.make_controller();
    race(*automdt_ctrl);
    optimizers::MarlinController marlin;
    race(marlin);
    optimizers::JointGdController joint_gd;
    race(joint_gd);
    optimizers::MonolithicController mono;
    race(mono);
  }

  std::printf("\nFig.5-style comparison (bottleneck stage discovery and "
              "completion):\n");
  table.print(std::cout);
  return 0;
}
